// Per-block NAND state machine enforcing ESP programming semantics.
//
// This is the layer where the physics of Sec. 3 lives:
//   * a page (word line) is programmed either as one full page or as a
//     strictly sequential series of subpage programs (ESP mode);
//   * each subpage slot can be programmed exactly ONCE per erase cycle --
//     reprogramming destroys data, so the device refuses it;
//   * programming slot j DESTROYS the data stored in every previously
//     programmed slot of the same word line (cell-to-cell coupling and
//     program disturbance, Fig. 4) -- the device silently corrupts, exactly
//     as silicon would; keeping valid data out of harm's way is FTL policy;
//   * the slot written after k prior program operations is an Npp^k-type
//     subpage with correspondingly reduced retention.
//
// Illegal *command sequences* (out-of-order slot, programming a full page
// over a partially written one) throw std::logic_error: on silicon these
// are firmware bugs, and the tests rely on them failing loudly.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nand/geometry.h"
#include "util/serialize.h"
#include "util/sim_time.h"

namespace esp::nand {

enum class SlotState : std::uint8_t {
  kEmpty,      ///< erased, never programmed this cycle
  kStored,     ///< holds the token it was programmed with
  kCorrupted,  ///< destroyed by a later subpage program on the same WL
};

enum class PageMode : std::uint8_t {
  kErased,  ///< no program since last erase
  kFull,    ///< one conventional full-page program
  kEsp,     ///< one or more erase-free subpage programs
};

/// Snapshot of one subpage slot.
struct SlotView {
  SlotState state = SlotState::kEmpty;
  std::uint64_t token = 0;     ///< payload written by the FTL
  SimTime written_at = 0.0;    ///< simulated program time
  std::uint8_t npp = 0;        ///< Npp^k type: prior WL programs at write
};

/// One erase block: page modes, per-slot data, and P/E wear.
class Block {
 public:
  Block(std::uint32_t pages_per_block, std::uint32_t subpages_per_page);

  /// Erases the whole block, incrementing the P/E count.
  void erase();

  /// Conventional full-page program; requires an erased page.
  /// tokens.size() must equal subpages_per_page (one token per subpage's
  /// worth of data).
  void program_full(std::uint32_t page, std::span<const std::uint64_t> tokens,
                    SimTime now);

  /// ESP subpage program. `slot` must be the page's next unprogrammed slot
  /// (sequential order is a NAND constraint: later word-line segments would
  /// otherwise be disturbed unpredictably). Destroys previously programmed
  /// slots of the page.
  void program_subpage(std::uint32_t page, std::uint32_t slot,
                       std::uint64_t token, SimTime now);

  SlotView slot(std::uint32_t page, std::uint32_t slot) const;
  PageMode page_mode(std::uint32_t page) const { return mode_.at(page); }
  /// Number of program operations the page's word line has received this
  /// erase cycle (= next programmable slot index in ESP mode).
  std::uint32_t slots_programmed(std::uint32_t page) const {
    return programmed_.at(page);
  }

  std::uint32_t pe_cycles() const { return pe_cycles_; }
  std::uint32_t pages() const { return pages_; }
  std::uint32_t subpages_per_page() const { return subs_; }
  /// Pages with at least one program this erase cycle.
  std::uint32_t programmed_pages() const { return programmed_pages_; }
  /// Simulated time of the first program since the last erase; negative
  /// when the block is erased. Retention age of the oldest data is
  /// `now - first_program_us()`.
  SimTime first_program_us() const { return first_program_us_; }
  /// True when no page has been programmed since the last erase.
  bool is_erased() const;

  /// Epoch fast-forward support: accrues `cycles` P/E cycles without an
  /// erase command, modeling wear accumulated during a compressed aging
  /// epoch. Page contents and program state are untouched -- the resident
  /// data stands in for the last rewrite of the epoch.
  void add_wear(std::uint32_t cycles) noexcept { pe_cycles_ += cycles; }

  /// Snapshot support: full per-slot state. Shape (pages, subpages) must
  /// match the constructed block on load.
  void save_state(util::StateWriter& w) const;
  void load_state(util::StateReader& r);

 private:
  std::size_t idx(std::uint32_t page, std::uint32_t slot) const {
    return static_cast<std::size_t>(page) * subs_ + slot;
  }
  void check_page(std::uint32_t page) const;

  std::uint32_t pages_;
  std::uint32_t subs_;
  std::uint32_t pe_cycles_ = 0;
  std::uint32_t programmed_pages_ = 0;  ///< pages with >=1 program this cycle
  SimTime first_program_us_ = -1.0;     ///< first program since erase (<0: none)

  std::vector<PageMode> mode_;
  std::vector<std::uint8_t> programmed_;  ///< per page: slots programmed
  // Structure-of-arrays slot state (memory-dense; one block holds
  // pages * subs slots).
  std::vector<SlotState> state_;
  std::vector<std::uint8_t> npp_;
  std::vector<std::uint64_t> token_;
  std::vector<SimTime> written_at_;
};

}  // namespace esp::nand
