// NAND operation latencies and channel transfer model.
//
// Values follow the paper's measurement study: a 16-KB full-page TLC
// program takes 1600 us while a 4-KB subpage program takes 1300 us
// (fewer bit lines precharged in verify-reads, shorter driven word-line
// segment). Transfer assumes an ONFI-class 800 MB/s channel.
#pragma once

#include <cstdint>

#include "util/sim_time.h"

namespace esp::nand {

struct TimingSpec {
  SimTime read_full_us = 90.0;  ///< tR for a full TLC page
  /// Array time for a subpage-sized read. The paper's baseline hardware has
  /// no fast subpage read (Sec. 7 lists it as future work), so the default
  /// equals the full-page tR; the subpage-read extension benches lower it.
  SimTime read_sub_us = 90.0;
  SimTime prog_full_us = 1600.0;  ///< paper Sec. 5
  SimTime prog_sub_us = 1300.0;   ///< paper Sec. 5
  SimTime erase_us = 5000.0;      ///< typical TLC block erase
  double xfer_us_per_kb = 1.25;   ///< 800 MB/s channel
  SimTime cmd_overhead_us = 3.0;  ///< command/handshake per operation

  SimTime transfer_us(std::uint64_t bytes) const {
    return cmd_overhead_us +
           xfer_us_per_kb * (static_cast<double>(bytes) / 1024.0);
  }
};

}  // namespace esp::nand
