// Closed-loop host driver: feeds a request stream into an FTL, carries the
// simulated clock, and verifies end-to-end data integrity.
//
// Verification: the driver mirrors the FTL's deterministic token rule
// (token = make_token(sector, nth-write-of-sector)), so every read can be
// checked against the expected latest version. A mapping bug, an ESP
// corruption or a retention violation all surface as verify_failures.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "ftl/ftl.h"
#include "nand/device.h"
#include "util/histogram.h"
#include "workload/request.h"

namespace esp::telemetry {
class Telemetry;
}

namespace esp::sim {

/// Outcome of one driven run.
///
/// Two latency definitions, both covering THIS run's requests only (the
/// driver snapshots its cumulative histograms at run start and reports the
/// delta, so warmup/preconditioning traffic never pollutes a measured
/// window):
///   * service time  = issue -> completion (the device's work);
///   * response time = arrival -> completion (what the host experiences,
///     including the wait for a free queue-depth slot).
/// Arrivals are open-loop (paced) for requests with think_us > 0 --
/// queueing behind a saturated window or a GC stall shows up in response
/// time -- and closed-loop for think_us == 0, where generation is gated by
/// window availability and response converges to service time.
struct RunMetrics {
  std::uint64_t requests = 0;
  std::uint64_t write_requests = 0;
  std::uint64_t read_requests = 0;
  SimTime start_us = 0.0;
  SimTime end_us = 0.0;
  std::uint64_t verify_failures = 0;    ///< token mismatches on reads
  std::uint64_t io_errors = 0;          ///< reads reporting !ok
  double latency_p50_us = 0.0;          ///< request service-time percentiles
  double latency_p99_us = 0.0;
  double latency_p999_us = 0.0;
  double response_p50_us = 0.0;         ///< response-time percentiles
  double response_p99_us = 0.0;
  double response_p999_us = 0.0;
  /// Service-time distribution of this run's requests; mergeable across
  /// cells via Histogram::merge.
  util::Histogram latency_hist{0.0, 200000.0, 2000};
  /// Response-time (arrival -> completion) distribution of this run.
  util::Histogram response_hist{0.0, 200000.0, 2000};
  ftl::FtlStats ftl_stats;              ///< snapshot at end of run
  std::uint64_t device_erases = 0;      ///< snapshot of device counter
  std::uint64_t erases_during_run = 0;  ///< erases attributable to this run

  SimTime elapsed_us() const { return end_us - start_us; }
  double iops() const {
    const double secs = sim_time::to_seconds(elapsed_us());
    return secs > 0.0 ? static_cast<double>(requests) / secs : 0.0;
  }
};

/// Full timing of one request through the queue-depth pipeline.
struct Completion {
  SimTime arrival = 0.0;  ///< host generated the request (think-time clock)
  SimTime issue = 0.0;    ///< entered the device (a window slot was free)
  SimTime done = 0.0;     ///< simulated completion
  bool ok = true;
};

class Driver {
 public:
  /// The driver's shadow state sizes itself to ftl.logical_sectors().
  ///
  /// `queue_depth` models host-side concurrency: up to that many requests
  /// are in flight, so independent chips/channels overlap (the paper's
  /// platform runs multi-threaded benchmarks against 8 channels). The
  /// next request issues when the oldest outstanding slot completes.
  Driver(ftl::Ftl& ftl, nand::NandDevice& dev, std::uint32_t queue_depth = 32);

  /// Runs the stream starting at the current clock; returns metrics for
  /// this run only (FTL stats are cumulative snapshots).
  /// @param verify        check every read's tokens against the shadow map
  /// @param max_requests  stop after this many requests (0 = to exhaustion);
  ///                      lets callers split one stream into warmup+measure
  /// @param final_sample  flush the final partial sampling window at the
  ///                      end of the run. Pass false when stopping early to
  ///                      take a snapshot: the uninterrupted run would not
  ///                      have closed a window here, and restore-equivalence
  ///                      requires the resumed run's sample series to match
  ///                      it byte for byte.
  RunMetrics run(workload::RequestSource& source, bool verify = true,
                 std::uint64_t max_requests = 0, bool final_sample = true);

  /// Issues one request; advances the internal clock to its completion.
  ftl::IoResult submit(const workload::Request& request, bool verify = true);

  /// Submission with an externally supplied arrival clock: used by the
  /// multi-tenant mux, whose tenants each carry their own arrival time.
  /// The request issues no earlier than max(arrival, earliest_issue) --
  /// `earliest_issue` carries per-tenant window constraints -- and no
  /// earlier than the device window allows. Does NOT advance the driver's
  /// own arrival clock; think_us is the caller's to apply.
  Completion submit_at(const workload::Request& request, SimTime arrival,
                       SimTime earliest_issue, bool verify = true);

  /// Drains the FTL's write buffer. Routed through the submit path as a
  /// kFlush request, so explicit flushes and in-stream kFlush requests
  /// produce identical clocks, in-flight accounting and latency samples.
  void flush();

  /// Closes the health stream's final (partial) epoch at the current
  /// clock, if one is open -- so endpoint mode (interval 0) gets exactly
  /// attach + one epoch per run. Callers invoke it AFTER a run, outside
  /// any wall-clock window: the end-of-run snapshot is teardown I/O.
  /// No-op without an attached health monitor or when an epoch was
  /// already cut at now().
  void close_health_epoch();

  SimTime now() const { return now_; }
  /// Advances the clock (idle time); never moves backwards.
  void advance_to(SimTime t);

  /// Earliest time the device window can accept another request: the
  /// oldest in-flight completion when the window is full, the current
  /// clock otherwise. Scheduling hint for the tenant mux (does not pop).
  SimTime next_slot_hint() const {
    return inflight_.size() >= queue_depth_ ? inflight_.top() : now_;
  }

  std::uint64_t verify_failures() const { return verify_failures_; }

  /// Expected token of a sector's latest version (0 = never written).
  std::uint64_t expected_token(std::uint64_t sector) const;

  /// Service-time distribution (issue -> completion) of all requests
  /// submitted so far.
  const util::Histogram& latency_histogram() const { return latency_; }

  /// Response-time distribution (arrival -> completion) of all requests
  /// submitted so far. Under a saturated queue-depth window this includes
  /// the host-side wait for a free slot that service time cannot see.
  const util::Histogram& response_histogram() const { return response_; }

  /// Attaches the telemetry facade (nullptr detaches). The driver opens a
  /// span per host request and closes sampling windows on the facade's
  /// TimeSeriesSampler cadence; the final partial window is flushed at the
  /// end of each run(). When the facade carries a HealthMonitor, an
  /// epoch-0 baseline snapshot is committed immediately at attach, epochs
  /// follow the monitor's sim-time cadence, and a closing epoch is taken at
  /// the end of each run().
  ///
  /// With `resume` set, the facade is attached WITHOUT re-baselining: no
  /// sampling-window reset, no epoch-0 health snapshot. Used when restoring
  /// from a snapshot -- the facade's clocks arrive via its own load_state
  /// and the driver's window cursors via Driver::load_state, so the resumed
  /// telemetry streams continue exactly where the saved run left off.
  void set_telemetry(telemetry::Telemetry* telemetry, bool resume = false);

  /// Snapshot support (see core/snapshot.h). Must be called between
  /// requests: the in-flight window, shadow maps, cumulative histograms and
  /// telemetry sampling cursors are archived; a restored driver continues
  /// bit-identically. Restore order: construct, set_telemetry(tel, true),
  /// then load_state.
  void save_state(util::StateWriter& w) const;
  void load_state(util::StateReader& r);

 private:
  /// One bounds check per request: rejects [sector, sector+count) ranges
  /// outside the logical space so the per-sector shadow loops can index
  /// unchecked.
  void check_sector_range(std::uint64_t sector, std::uint32_t count) const;
  /// expected_token without the range check (caller guarantees bounds).
  std::uint64_t expected_token_unchecked(std::uint64_t sector) const;
  /// Issue time for the next request under the queue-depth window; the
  /// request cannot issue before `earliest`.
  SimTime next_issue_slot(SimTime earliest);
  /// Closes the current sampling window if it is due.
  void maybe_sample();
  /// Unconditionally closes the current sampling window at now().
  void take_sample();
  /// Commits a health epoch if one is due.
  void maybe_health();
  /// Unconditionally snapshots device + FTL state into a health epoch.
  void take_health();

  ftl::Ftl& ftl_;
  nand::NandDevice& dev_;
  std::uint32_t queue_depth_;
  SimTime now_ = 0.0;      ///< latest completion seen (clock high-water mark)
  SimTime arrival_ = 0.0;  ///< host-side arrival time (think-time driven)
  /// Completion times of in-flight requests (min-heap, size <= QD).
  std::priority_queue<SimTime, std::vector<SimTime>, std::greater<>>
      inflight_;
  std::vector<std::uint32_t> shadow_version_;
  /// Sectors whose latest state is "discarded" (set by whole-page trims,
  /// cleared by rewrites) -- mirrors the FTLs' page-aligned trim semantics.
  std::vector<bool> shadow_trimmed_;
  std::uint64_t verify_failures_ = 0;
  std::uint64_t io_errors_ = 0;
  /// 0..200 ms in 2000 buckets: covers buffered hits through GC stalls.
  util::Histogram latency_{0.0, 200000.0, 2000};
  /// Response time (arrival -> done); same shape as latency_.
  util::Histogram response_{0.0, 200000.0, 2000};
  std::vector<std::uint64_t> read_tokens_;  // scratch
  std::uint64_t requests_submitted_ = 0;

  // Telemetry sampling-window state (counter values at last window close).
  telemetry::Telemetry* tel_ = nullptr;
  ftl::FtlStats tel_last_stats_;
  std::uint64_t tel_last_erases_ = 0;
  std::uint64_t tel_last_requests_ = 0;
  SimTime tel_last_sample_us_ = 0.0;
};

}  // namespace esp::sim
