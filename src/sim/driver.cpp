#include "sim/driver.h"

#include <algorithm>
#include <stdexcept>

#include "ftl/types.h"
#include "telemetry/health.h"
#include "telemetry/telemetry.h"
#include "util/logger.h"

namespace esp::sim {
namespace {

telemetry::OpKind host_op_kind(workload::Request::Type type) {
  switch (type) {
    case workload::Request::Type::kWrite: return telemetry::OpKind::kHostWrite;
    case workload::Request::Type::kRead: return telemetry::OpKind::kHostRead;
    case workload::Request::Type::kTrim: return telemetry::OpKind::kHostTrim;
    case workload::Request::Type::kFlush: break;
  }
  return telemetry::OpKind::kHostFlush;
}

}  // namespace

Driver::Driver(ftl::Ftl& ftl, nand::NandDevice& dev,
               std::uint32_t queue_depth)
    : ftl_(ftl),
      dev_(dev),
      queue_depth_(queue_depth == 0 ? 1 : queue_depth),
      shadow_version_(ftl.logical_sectors(), 0),
      shadow_trimmed_(ftl.logical_sectors(), false) {
  // Pre-size the hot-path scratch so steady-state submission never
  // reallocates: the in-flight window tops out at queue_depth slots, and
  // the read-token buffer at the largest multi-page read a workload
  // issues (16 pages is beyond every generator/trace in the tree).
  std::vector<SimTime> slots;
  slots.reserve(queue_depth_);
  inflight_ = std::priority_queue<SimTime, std::vector<SimTime>,
                                  std::greater<>>(std::greater<>{},
                                                  std::move(slots));
  read_tokens_.reserve(16ull * dev.geometry().subpages_per_page);
}

SimTime Driver::next_issue_slot(SimTime earliest) {
  if (inflight_.size() < queue_depth_) return earliest;
  const SimTime slot = inflight_.top();
  inflight_.pop();
  return std::max(earliest, slot);
}

void Driver::check_sector_range(std::uint64_t sector,
                                std::uint32_t count) const {
  const std::uint64_t sectors = shadow_version_.size();
  if (sector >= sectors || count > sectors - sector)
    throw std::out_of_range("Driver: sector range outside logical space");
}

std::uint64_t Driver::expected_token_unchecked(std::uint64_t sector) const {
  if (shadow_trimmed_[sector]) return 0;
  const std::uint32_t version = shadow_version_[sector];
  return version == 0 ? 0 : ftl::make_token(sector, version);
}

std::uint64_t Driver::expected_token(std::uint64_t sector) const {
  check_sector_range(sector, 1);
  return expected_token_unchecked(sector);
}

void Driver::advance_to(SimTime t) {
  // Manual idle advance: the host is also idle, so future requests arrive
  // no earlier than t.
  now_ = std::max(now_, t);
  arrival_ = std::max(arrival_, t);
}

ftl::IoResult Driver::submit(const workload::Request& request, bool verify) {
  // Arrival semantics: think_us > 0 paces an OPEN-LOOP arrival process --
  // the request arrives think_us after the previous one regardless of
  // device state, so time spent waiting for a window slot is visible
  // queueing delay. think_us == 0 marks CLOSED-LOOP generation: the host
  // emits the next request the moment it can submit again, so when the
  // window is saturated the arrival clock rides the oldest in-flight
  // completion instead of falling unboundedly behind.
  arrival_ += request.think_us;
  if (request.think_us <= 0.0 && inflight_.size() >= queue_depth_)
    arrival_ = std::max(arrival_, inflight_.top());
  const Completion c = submit_at(request, arrival_, arrival_, verify);
  return {c.done, c.ok};
}

Completion Driver::submit_at(const workload::Request& request, SimTime arrival,
                             SimTime earliest_issue, bool verify) {
  using workload::Request;
  const SimTime issue =
      next_issue_slot(std::max(arrival, earliest_issue));
  if (tel_) tel_->begin_request(issue, arrival, request.tenant);
  ftl::IoResult result{issue, true};
  switch (request.type) {
    case Request::Type::kWrite:
      check_sector_range(request.sector, request.count);
      for (std::uint32_t i = 0; i < request.count; ++i) {
        ++shadow_version_[request.sector + i];
        shadow_trimmed_[request.sector + i] = false;
      }
      result = ftl_.write(request.sector, request.count, request.sync, issue);
      break;
    case Request::Type::kRead: {
      if (verify) check_sector_range(request.sector, request.count);
      result = ftl_.read(request.sector, request.count, issue,
                         verify ? &read_tokens_ : nullptr);
      if (!result.ok) ++io_errors_;
      if (verify) {
        for (std::uint32_t i = 0; i < request.count; ++i) {
          const std::uint64_t want =
              expected_token_unchecked(request.sector + i);
          if (read_tokens_[i] != want) {
            ++verify_failures_;
            ESP_LOG_ERROR(
                "verify failure: sector=%llu got=%llx want=%llx",
                static_cast<unsigned long long>(request.sector + i),
                static_cast<unsigned long long>(read_tokens_[i]),
                static_cast<unsigned long long>(want));
          }
        }
      }
      break;
    }
    case Request::Type::kTrim: {
      check_sector_range(request.sector, request.count);
      ftl_.trim(request.sector, request.count);
      // Mirror the Ftl::trim contract: only whole logical pages inside the
      // range are discarded; partial edges keep their latest data.
      const std::uint32_t subs = dev_.geometry().subpages_per_page;
      const std::uint64_t first_lpn = (request.sector + subs - 1) / subs;
      const std::uint64_t end_lpn = (request.sector + request.count) / subs;
      for (std::uint64_t lpn = first_lpn; lpn < end_lpn; ++lpn)
        for (std::uint32_t i = 0; i < subs; ++i)
          shadow_trimmed_[lpn * subs + i] = true;
      break;
    }
    case Request::Type::kFlush:
      result = ftl_.flush(issue);
      break;
  }
  latency_.add(result.done - issue);
  response_.add(result.done - arrival);
  inflight_.push(result.done);
  now_ = std::max(now_, result.done);
  now_ = std::max(now_, ftl_.tick(now_));
  ++requests_submitted_;
  if (tel_) {
    tel_->end_request(host_op_kind(request.type), issue, result.done,
                      request.count, request.sector);
    maybe_sample();
    maybe_health();
  }
  return {arrival, issue, result.done, result.ok};
}

void Driver::flush() {
  submit(workload::Request{workload::Request::Type::kFlush, 0, 0,
                           /*sync=*/false, /*think_us=*/0.0},
         /*verify=*/false);
}

RunMetrics Driver::run(workload::RequestSource& source, bool verify,
                       std::uint64_t max_requests, bool final_sample) {
  RunMetrics metrics;
  metrics.start_us = now_;
  const std::uint64_t failures_before = verify_failures_;
  const std::uint64_t io_errors_before = io_errors_;
  const std::uint64_t erases_before = dev_.counters().erases;
  // Snapshot the cumulative histograms: the reported percentiles must
  // cover THIS run only, not preconditioning/warmup traffic.
  const util::Histogram latency_before = latency_;
  const util::Histogram response_before = response_;

  while (max_requests == 0 || metrics.requests < max_requests) {
    const auto request = source.next();
    if (!request) break;
    ++metrics.requests;
    if (request->type == workload::Request::Type::kWrite)
      ++metrics.write_requests;
    else if (request->type == workload::Request::Type::kRead)
      ++metrics.read_requests;
    submit(*request, verify);
  }

  // Flush the final (partial) sampling window so short runs still produce
  // a closing snapshot; guarded so zero-length windows are not pushed.
  // The health stream's final epoch is NOT closed here: the harness calls
  // close_health_epoch() explicitly, outside its wall-clock measurement,
  // because the end-of-run snapshot is teardown I/O, not steady-state work.
  if (final_sample && tel_ && tel_->sampler().enabled() &&
      now_ > tel_last_sample_us_)
    take_sample();

  metrics.end_us = now_;
  metrics.latency_hist = latency_.delta_since(latency_before);
  metrics.response_hist = response_.delta_since(response_before);
  metrics.latency_p50_us = metrics.latency_hist.percentile(0.50);
  metrics.latency_p99_us = metrics.latency_hist.percentile(0.99);
  metrics.latency_p999_us = metrics.latency_hist.percentile(0.999);
  metrics.response_p50_us = metrics.response_hist.percentile(0.50);
  metrics.response_p99_us = metrics.response_hist.percentile(0.99);
  metrics.response_p999_us = metrics.response_hist.percentile(0.999);
  metrics.verify_failures = verify_failures_ - failures_before;
  metrics.io_errors = io_errors_ - io_errors_before;
  metrics.ftl_stats = ftl_.stats();
  metrics.device_erases = dev_.counters().erases;
  metrics.erases_during_run = metrics.device_erases - erases_before;
  return metrics;
}

void Driver::set_telemetry(telemetry::Telemetry* telemetry, bool resume) {
  tel_ = telemetry;
  if (!tel_) return;
  if (resume) return;  // clocks + cursors arrive via load_state
  tel_last_stats_ = ftl_.stats();
  tel_last_erases_ = dev_.counters().erases;
  tel_last_requests_ = requests_submitted_;
  tel_last_sample_us_ = now_;
  tel_->sampler().start(now_);
  if (telemetry::HealthMonitor* hm = tel_->health()) {
    // Epoch 0 at attach: the absolute baseline (preconditioning wear
    // included) every later delta row builds on.
    hm->start(now_);
    take_health();
  }
}

void Driver::maybe_sample() {
  if (tel_->sampler().due(now_)) take_sample();
}

void Driver::close_health_epoch() {
  if (tel_ && tel_->health() && now_ > tel_->health()->last_epoch_us())
    take_health();
}

void Driver::maybe_health() {
  telemetry::HealthMonitor* hm = tel_->health();
  if (hm && hm->due(now_)) take_health();
}

void Driver::take_health() {
  telemetry::HealthMonitor* hm = tel_->health();
  const std::span<telemetry::BlockHealth> rows = hm->begin_epoch();
  dev_.fill_block_health(rows);
  ftl_.collect_health(rows);
  hm->commit_epoch(now_, ftl_.free_blocks());
}

void Driver::save_state(util::StateWriter& w) const {
  w.tag("DRVR");
  w.f64(now_);
  w.f64(arrival_);
  w.pod_vec(util::heap_container(inflight_));
  w.pod_vec(shadow_version_);
  w.bool_vec(shadow_trimmed_);
  w.u64(verify_failures_);
  w.u64(io_errors_);
  latency_.save_state(w);
  response_.save_state(w);
  w.u64(requests_submitted_);
  ftl::save_stats(w, tel_last_stats_);
  w.u64(tel_last_erases_);
  w.u64(tel_last_requests_);
  w.f64(tel_last_sample_us_);
}

void Driver::load_state(util::StateReader& r) {
  r.tag("DRVR");
  now_ = r.f64();
  arrival_ = r.f64();
  r.pod_vec(util::heap_container(inflight_));
  r.pod_vec(shadow_version_);
  r.bool_vec(shadow_trimmed_);
  if (shadow_version_.size() != ftl_.logical_sectors() ||
      shadow_trimmed_.size() != ftl_.logical_sectors())
    throw std::runtime_error("Driver::load_state: logical space mismatch");
  verify_failures_ = r.u64();
  io_errors_ = r.u64();
  latency_.load_state(r);
  response_.load_state(r);
  requests_submitted_ = r.u64();
  ftl::load_stats(r, tel_last_stats_);
  tel_last_erases_ = r.u64();
  tel_last_requests_ = r.u64();
  tel_last_sample_us_ = r.f64();
}

void Driver::take_sample() {
  const ftl::FtlStats cur = ftl_.stats();
  const ftl::FtlStats d = ftl::stats_delta(cur, tel_last_stats_);
  const nand::Geometry& geo = dev_.geometry();

  telemetry::Sample s;
  s.sim_time_s = sim_time::to_seconds(now_);
  s.requests = requests_submitted_ - tel_last_requests_;
  const double window_s = sim_time::to_seconds(now_ - tel_last_sample_us_);
  s.iops = window_s > 0.0 ? static_cast<double>(s.requests) / window_s : 0.0;
  s.request_waf = d.avg_small_request_waf();
  s.overall_waf = d.overall_waf(geo.page_bytes, geo.subpage_bytes());
  s.gc_invocations = d.gc_invocations;
  s.gc_copy_sectors = d.gc_copy_sectors;
  s.erases = dev_.counters().erases - tel_last_erases_;
  s.prog_full = d.flash_prog_full;
  s.prog_sub = d.flash_prog_sub;
  s.forward_migrations = d.forward_migrations;
  s.retention_evictions = d.retention_evictions;
  s.rmw_ops = d.rmw_ops;
  // Subpage/log-region occupancy, published by hybrid FTLs under their
  // name scope (0 for FTLs without a region).
  s.region_blocks =
      tel_->registry().gauge_value(ftl_.name() + "/region_blocks");
  s.region_valid_sectors =
      tel_->registry().gauge_value(ftl_.name() + "/region_valid_sectors");
  tel_->harvest_window(s);
  tel_->sampler().push(s, now_);

  tel_last_stats_ = cur;
  tel_last_erases_ = dev_.counters().erases;
  tel_last_requests_ = requests_submitted_;
  tel_last_sample_us_ = now_;
}

}  // namespace esp::sim
