#include "sim/driver.h"

#include <algorithm>

#include "ftl/types.h"
#include "util/logger.h"

namespace esp::sim {

Driver::Driver(ftl::Ftl& ftl, nand::NandDevice& dev,
               std::uint32_t queue_depth)
    : ftl_(ftl),
      dev_(dev),
      queue_depth_(queue_depth == 0 ? 1 : queue_depth),
      shadow_version_(ftl.logical_sectors(), 0),
      shadow_trimmed_(ftl.logical_sectors(), false) {}

SimTime Driver::next_issue_slot() {
  if (inflight_.size() < queue_depth_) return arrival_;
  const SimTime slot = inflight_.top();
  inflight_.pop();
  return std::max(arrival_, slot);
}

std::uint64_t Driver::expected_token(std::uint64_t sector) const {
  if (shadow_trimmed_.at(sector)) return 0;
  const std::uint32_t version = shadow_version_.at(sector);
  return version == 0 ? 0 : ftl::make_token(sector, version);
}

void Driver::advance_to(SimTime t) {
  // Manual idle advance: the host is also idle, so future requests arrive
  // no earlier than t.
  now_ = std::max(now_, t);
  arrival_ = std::max(arrival_, t);
}

ftl::IoResult Driver::submit(const workload::Request& request, bool verify) {
  using workload::Request;
  arrival_ += request.think_us;
  const SimTime issue = next_issue_slot();
  ftl::IoResult result{issue, true};
  switch (request.type) {
    case Request::Type::kWrite:
      for (std::uint32_t i = 0; i < request.count; ++i) {
        ++shadow_version_[request.sector + i];
        shadow_trimmed_[request.sector + i] = false;
      }
      result = ftl_.write(request.sector, request.count, request.sync, issue);
      break;
    case Request::Type::kRead: {
      result = ftl_.read(request.sector, request.count, issue,
                         verify ? &read_tokens_ : nullptr);
      if (!result.ok) ++io_errors_;
      if (verify) {
        for (std::uint32_t i = 0; i < request.count; ++i) {
          const std::uint64_t want = expected_token(request.sector + i);
          if (read_tokens_[i] != want) {
            ++verify_failures_;
            ESP_LOG_ERROR(
                "verify failure: sector=%llu got=%llx want=%llx",
                static_cast<unsigned long long>(request.sector + i),
                static_cast<unsigned long long>(read_tokens_[i]),
                static_cast<unsigned long long>(want));
          }
        }
      }
      break;
    }
    case Request::Type::kTrim: {
      ftl_.trim(request.sector, request.count);
      // Mirror the FTLs' semantics: only whole logical pages inside the
      // range are actually discarded.
      const std::uint32_t subs = dev_.geometry().subpages_per_page;
      const std::uint64_t first_lpn = (request.sector + subs - 1) / subs;
      const std::uint64_t end_lpn = (request.sector + request.count) / subs;
      for (std::uint64_t lpn = first_lpn; lpn < end_lpn; ++lpn)
        for (std::uint32_t i = 0; i < subs; ++i)
          shadow_trimmed_[lpn * subs + i] = true;
      break;
    }
    case Request::Type::kFlush:
      result = ftl_.flush(issue);
      break;
  }
  latency_.add(result.done - issue);
  inflight_.push(result.done);
  now_ = std::max(now_, result.done);
  now_ = std::max(now_, ftl_.tick(now_));
  return result;
}

void Driver::flush() { now_ = std::max(now_, ftl_.flush(now_).done); }

RunMetrics Driver::run(workload::RequestSource& source, bool verify,
                       std::uint64_t max_requests) {
  RunMetrics metrics;
  metrics.start_us = now_;
  const std::uint64_t failures_before = verify_failures_;
  const std::uint64_t io_errors_before = io_errors_;
  const std::uint64_t erases_before = dev_.counters().erases;

  while (max_requests == 0 || metrics.requests < max_requests) {
    const auto request = source.next();
    if (!request) break;
    ++metrics.requests;
    if (request->type == workload::Request::Type::kWrite)
      ++metrics.write_requests;
    else if (request->type == workload::Request::Type::kRead)
      ++metrics.read_requests;
    submit(*request, verify);
  }

  metrics.end_us = now_;
  metrics.latency_p50_us = latency_.percentile(0.50);
  metrics.latency_p99_us = latency_.percentile(0.99);
  metrics.verify_failures = verify_failures_ - failures_before;
  metrics.io_errors = io_errors_ - io_errors_before;
  metrics.ftl_stats = ftl_.stats();
  metrics.device_erases = dev_.counters().erases;
  metrics.erases_during_run = metrics.device_erases - erases_before;
  return metrics;
}

}  // namespace esp::sim
