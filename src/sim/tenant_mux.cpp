#include "sim/tenant_mux.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "telemetry/metrics.h"

namespace esp::sim {

std::vector<TenantNamespace> partition_namespaces(
    std::uint64_t logical_sectors, std::size_t tenants,
    std::uint32_t sectors_per_page) {
  if (tenants == 0)
    throw std::invalid_argument("partition_namespaces: zero tenants");
  if (sectors_per_page == 0)
    throw std::invalid_argument("partition_namespaces: zero page size");
  const std::uint64_t pages = logical_sectors / sectors_per_page;
  const std::uint64_t pages_per_tenant = pages / tenants;
  if (pages_per_tenant == 0)
    throw std::invalid_argument(
        "partition_namespaces: fewer logical pages than tenants");
  std::vector<TenantNamespace> out(tenants);
  const std::uint64_t slice = pages_per_tenant * sectors_per_page;
  for (std::size_t i = 0; i < tenants; ++i) {
    out[i].base = static_cast<std::uint64_t>(i) * slice;
    out[i].sectors = slice;
  }
  return out;
}

TenantMux::TenantMux(Driver& driver, QosPolicy policy, std::vector<Lane> lanes)
    : driver_(driver), scheduler_(policy, lanes.size()) {
  if (lanes.empty())
    throw std::invalid_argument("TenantMux: at least one lane required");
  lanes_.reserve(lanes.size());
  for (Lane& lane : lanes) {
    if (!lane.source)
      throw std::invalid_argument("TenantMux: lane without a request source");
    if (lane.config.queue_depth == 0) lane.config.queue_depth = 1;
    LaneRt rt;
    rt.fixed = std::move(lane);
    // Tenants arrive no earlier than the clock at mux construction, so a
    // preconditioned device does not give them retroactive arrival times.
    rt.arrival = driver_.now();
    lanes_.push_back(std::move(rt));
  }
  states_.resize(lanes_.size());
}

void TenantMux::set_registry(telemetry::MetricsRegistry* registry) {
  for (LaneRt& lane : lanes_) {
    if (!registry) {
      lane.c_requests = lane.c_write_sectors = lane.c_read_sectors = nullptr;
      continue;
    }
    const std::string prefix = "tenant/" + lane.fixed.config.name + "/";
    lane.c_requests = &registry->counter(prefix + "requests");
    lane.c_write_sectors = &registry->counter(prefix + "host_write_sectors");
    lane.c_read_sectors = &registry->counter(prefix + "host_read_sectors");
  }
}

void TenantMux::refill(LaneRt& lane) {
  if (lane.has_pending || lane.exhausted) return;
  const auto request = lane.fixed.source->next();
  if (!request) {
    lane.exhausted = true;
    return;
  }
  lane.pending = *request;
  // Same arrival semantics as Driver::submit: think_us > 0 paces an
  // open-loop arrival; think_us == 0 is closed-loop generation gated by
  // this tenant's OWN window (other tenants' completions never advance
  // this lane's arrival clock).
  lane.arrival += request->think_us;
  if (request->think_us <= 0.0 &&
      lane.inflight.size() >= lane.fixed.config.queue_depth)
    lane.arrival = std::max(lane.arrival, lane.inflight.top());
  lane.has_pending = true;
}

SimTime TenantMux::lane_ready(const LaneRt& lane) const {
  SimTime ready = lane.arrival;
  if (lane.inflight.size() >= lane.fixed.config.queue_depth)
    ready = std::max(ready, lane.inflight.top());
  return ready;
}

MuxRunMetrics TenantMux::run(bool verify, std::uint64_t max_requests) {
  MuxRunMetrics out;
  out.start_us = driver_.now();
  out.tenants.resize(lanes_.size());
  for (std::size_t i = 0; i < lanes_.size(); ++i)
    out.tenants[i].name = lanes_[i].fixed.config.name;

  while (max_requests == 0 || out.requests < max_requests) {
    bool any_pending = false;
    for (LaneRt& lane : lanes_) {
      refill(lane);
      any_pending |= lane.has_pending;
    }
    if (!any_pending) break;

    for (std::size_t i = 0; i < lanes_.size(); ++i) {
      const LaneRt& lane = lanes_[i];
      states_[i].pending = lane.has_pending;
      states_[i].arrival = lane.arrival;
      states_[i].ready = lane.has_pending ? lane_ready(lane) : 0.0;
      states_[i].cost = lane.has_pending && lane.pending.count > 0
                            ? lane.pending.count
                            : 1;
      states_[i].weight = lane.fixed.config.weight;
    }
    const std::size_t idx = scheduler_.pick(states_, driver_.next_slot_hint());
    LaneRt& lane = lanes_[idx];
    TenantMetrics& tm = out.tenants[idx];

    // Consume this tenant's own window slot (mirrors the driver's device
    // window: the oldest in-flight completion frees the slot).
    SimTime window_slot = lane.arrival;
    if (lane.inflight.size() >= lane.fixed.config.queue_depth) {
      window_slot = std::max(window_slot, lane.inflight.top());
      lane.inflight.pop();
    }

    workload::Request request = lane.pending;
    const TenantNamespace& ns = lane.fixed.ns;
    if (request.type != workload::Request::Type::kFlush &&
        (request.sector >= ns.sectors ||
         request.count > ns.sectors - request.sector)) {
      throw std::out_of_range("TenantMux: request outside tenant namespace");
    }
    request.sector += ns.base;
    request.tenant = static_cast<std::uint16_t>(idx);

    const Completion c =
        driver_.submit_at(request, lane.arrival, window_slot, verify);
    lane.inflight.push(c.done);
    lane.has_pending = false;
    scheduler_.charge(idx, states_[idx]);

    ++out.requests;
    ++tm.requests;
    tm.service_hist.add(c.done - c.issue);
    tm.response_hist.add(c.done - c.arrival);
    tm.wait_hist.add(c.issue - c.arrival);
    if (lane.c_requests) lane.c_requests->inc();
    if (request.type == workload::Request::Type::kWrite) {
      ++tm.write_requests;
      tm.host_write_sectors += request.count;
      if (lane.c_write_sectors) lane.c_write_sectors->inc(request.count);
    } else if (request.type == workload::Request::Type::kRead) {
      ++tm.read_requests;
      tm.host_read_sectors += request.count;
      if (lane.c_read_sectors) lane.c_read_sectors->inc(request.count);
    }
  }

  out.end_us = driver_.now();
  for (TenantMetrics& tm : out.tenants) {
    tm.service_p50_us = tm.service_hist.percentile(0.50);
    tm.service_p99_us = tm.service_hist.percentile(0.99);
    tm.service_p999_us = tm.service_hist.percentile(0.999);
    tm.response_p50_us = tm.response_hist.percentile(0.50);
    tm.response_p99_us = tm.response_hist.percentile(0.99);
    tm.response_p999_us = tm.response_hist.percentile(0.999);
    tm.wait_p50_us = tm.wait_hist.percentile(0.50);
    tm.wait_p99_us = tm.wait_hist.percentile(0.99);
    tm.wait_p999_us = tm.wait_hist.percentile(0.999);
  }
  return out;
}

}  // namespace esp::sim
