// Multi-tenant namespace multiplexer over the closed-loop driver.
//
// Several tenants share ONE physical device and ONE FTL instance, but each
// gets:
//   * its own logical-sector namespace -- a contiguous, page-aligned slice
//     of the shared logical space; tenant-local sector addresses are
//     rebased by the slice base on submission, so tenants cannot touch
//     each other's data (out-of-slice requests are rejected);
//   * its own arrival clock -- think times pace each tenant independently,
//     so a paced latency-sensitive reader and a full-throttle bulk writer
//     coexist on one simulated timeline;
//   * its own in-flight window (per-tenant queue depth) -- a tenant can
//     keep at most `queue_depth` requests outstanding, bounding how much
//     of the device window one tenant may occupy.
//
// When the shared device can accept another request, a QosScheduler picks
// which tenant goes next (see sim/qos.h). Response time is measured from
// the tenant's true arrival, so scheduling delay inflicted by a noisy
// neighbor is visible in that tenant's percentiles.
#pragma once

#include <cstdint>
#include <queue>
#include <string>
#include <vector>

#include "sim/driver.h"
#include "sim/qos.h"
#include "workload/request.h"

namespace esp::telemetry {
class Counter;
class MetricsRegistry;
}

namespace esp::sim {

/// Static description of one tenant.
struct TenantConfig {
  std::string name;               ///< metrics scope ("tenant/<name>/...")
  double weight = 1.0;            ///< weighted-share allocation
  std::uint32_t queue_depth = 8;  ///< max in-flight requests for this tenant
};

/// One tenant's slice of the shared logical space, in 4-KB sectors.
struct TenantNamespace {
  std::uint64_t base = 0;     ///< first shared-space sector of the slice
  std::uint64_t sectors = 0;  ///< slice length
};

/// Splits `logical_sectors` into `tenants` equal page-aligned slices.
/// Page alignment keeps trim semantics intact across the rebase (a
/// tenant-local whole-page trim stays whole-page in the shared space).
/// Throws std::invalid_argument if the space cannot give every tenant at
/// least one logical page.
std::vector<TenantNamespace> partition_namespaces(
    std::uint64_t logical_sectors, std::size_t tenants,
    std::uint32_t sectors_per_page);

/// Per-tenant outcome of one mux run. Latency definitions match
/// sim::RunMetrics: service = issue->done, response = arrival->done, and
/// both cover this run only.
struct TenantMetrics {
  std::string name;
  std::uint64_t requests = 0;
  std::uint64_t write_requests = 0;
  std::uint64_t read_requests = 0;
  std::uint64_t host_write_sectors = 0;
  std::uint64_t host_read_sectors = 0;
  double service_p50_us = 0.0;
  double service_p99_us = 0.0;
  double service_p999_us = 0.0;
  double response_p50_us = 0.0;
  double response_p99_us = 0.0;
  double response_p999_us = 0.0;
  /// Queue wait (issue - arrival = response - service): time the request
  /// sat waiting for scheduling + a window slot before the device saw it.
  double wait_p50_us = 0.0;
  double wait_p99_us = 0.0;
  double wait_p999_us = 0.0;
  util::Histogram service_hist{0.0, 200000.0, 2000};
  util::Histogram response_hist{0.0, 200000.0, 2000};
  util::Histogram wait_hist{0.0, 200000.0, 2000};

  /// This tenant's share of host-written sectors; the experiment layer
  /// multiplies it into the shared FTL's WAF for per-tenant attribution.
  double write_share(std::uint64_t total_write_sectors) const {
    return total_write_sectors == 0
               ? 0.0
               : static_cast<double>(host_write_sectors) /
                     static_cast<double>(total_write_sectors);
  }
};

/// Aggregate outcome of one mux run.
struct MuxRunMetrics {
  std::uint64_t requests = 0;
  SimTime start_us = 0.0;
  SimTime end_us = 0.0;
  std::vector<TenantMetrics> tenants;

  SimTime elapsed_us() const { return end_us - start_us; }
  std::uint64_t total_host_write_sectors() const {
    std::uint64_t total = 0;
    for (const TenantMetrics& t : tenants) total += t.host_write_sectors;
    return total;
  }
};

class TenantMux {
 public:
  /// One tenant's static wiring: configuration, namespace slice, and the
  /// request stream that feeds it (tenant-local sector addresses).
  struct Lane {
    TenantConfig config;
    TenantNamespace ns;
    workload::RequestSource* source = nullptr;
  };

  /// The driver must outlive the mux. Lanes are fixed for the mux's life;
  /// their indices are the `tenant` ids stamped onto submitted requests.
  TenantMux(Driver& driver, QosPolicy policy, std::vector<Lane> lanes);

  /// Publishes per-tenant counters ("tenant/<name>/requests",
  /// ".../host_write_sectors", ".../host_read_sectors") into the registry.
  /// Call before run(); nullptr detaches.
  void set_registry(telemetry::MetricsRegistry* registry);

  /// Drives all lanes until every source is exhausted or `max_requests`
  /// total requests were served (0 = to exhaustion). Callable repeatedly:
  /// a warmup call then a measure call, each reporting its own window.
  MuxRunMetrics run(bool verify = true, std::uint64_t max_requests = 0);

  QosPolicy policy() const { return scheduler_.policy(); }
  std::size_t lane_count() const { return lanes_.size(); }
  const TenantNamespace& lane_namespace(std::size_t i) const {
    return lanes_[i].fixed.ns;
  }

 private:
  struct LaneRt {
    Lane fixed;
    SimTime arrival = 0.0;  ///< tenant-local arrival clock
    /// Completion times of this tenant's in-flight requests (min-heap,
    /// size <= config.queue_depth).
    std::priority_queue<SimTime, std::vector<SimTime>, std::greater<>>
        inflight;
    workload::Request pending;  ///< valid iff has_pending
    bool has_pending = false;
    bool exhausted = false;
    // Registry counters (nullptr when no registry attached).
    telemetry::Counter* c_requests = nullptr;
    telemetry::Counter* c_write_sectors = nullptr;
    telemetry::Counter* c_read_sectors = nullptr;
  };

  /// Pulls the next request into an empty, non-exhausted lane; advances
  /// the lane's arrival clock by the request's think time.
  void refill(LaneRt& lane);
  /// Earliest issue time for the lane's pending request under its own
  /// window (does not consult the device window).
  SimTime lane_ready(const LaneRt& lane) const;

  Driver& driver_;
  QosScheduler scheduler_;
  std::vector<LaneRt> lanes_;
  std::vector<LaneState> states_;  // scratch for pick()
};

}  // namespace esp::sim
