// QoS scheduling policies for the multi-tenant namespace mux.
//
// The scheduler answers one question, repeatedly: a device slot can accept
// another request -- WHICH tenant's pending request goes next? Three
// policies:
//
//   * kFifo          -- arrival order across all tenants: whoever's pending
//                       request arrived first. No isolation: a tenant that
//                       keeps a deep backlog monopolizes the device and
//                       everyone else queues behind it.
//   * kRoundRobin    -- strict request-count alternation over tenants with
//                       work. Equal request rates regardless of request
//                       size or weight.
//   * kWeightedShare -- start-time fair queueing (SFQ): each tenant carries
//                       a virtual-time tag advanced by cost/weight per
//                       served request; the eligible tenant with the
//                       smallest tag goes next. A tenant that was idle
//                       re-enters at the current virtual time (no hoarded
//                       credit), so the policy is work-conserving and a
//                       low-rate latency-sensitive tenant with a high
//                       weight preempts a backlogged bulk writer at every
//                       pick point.
//
// All policies are deterministic: ties break toward the lowest tenant
// index, and no decision depends on host-side state (see docs/QOS.md).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/sim_time.h"

namespace esp::sim {

enum class QosPolicy {
  kFifo,
  kRoundRobin,
  kWeightedShare,
};

std::string qos_policy_name(QosPolicy policy);
std::optional<QosPolicy> parse_qos_policy(const std::string& name);

/// Scheduler view of one tenant lane at a pick point.
struct LaneState {
  bool pending = false;   ///< lane has a request waiting to be scheduled
  SimTime arrival = 0.0;  ///< pending request's host arrival time
  SimTime ready = 0.0;    ///< earliest issue: max(arrival, tenant window)
  std::uint32_t cost = 1;  ///< request cost in sectors (>= 1)
  double weight = 1.0;     ///< weighted-share allocation
};

class QosScheduler {
 public:
  QosScheduler(QosPolicy policy, std::size_t lanes);

  QosPolicy policy() const { return policy_; }

  /// Picks the lane to serve next. `horizon` is the earliest time the
  /// device can accept work; lanes ready at or before it are *eligible*
  /// (their requests have arrived by the time a slot frees). When no lane
  /// is eligible the earliest-ready lane is served -- the device idles
  /// until its arrival, so the mux never deadlocks on a paced tenant.
  /// At least one lane must be pending.
  std::size_t pick(const std::vector<LaneState>& lanes, SimTime horizon);

  /// Charges the lane just served; must follow every pick() with that
  /// lane's state. Advances round-robin and virtual-time bookkeeping.
  void charge(std::size_t lane, const LaneState& state);

 private:
  QosPolicy policy_;
  std::size_t cursor_ = 0;      ///< round-robin: last lane served
  double virtual_time_ = 0.0;   ///< weighted share: SFQ virtual clock
  std::vector<double> finish_;  ///< weighted share: per-lane finish tag
};

}  // namespace esp::sim
