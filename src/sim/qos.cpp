#include "sim/qos.h"

#include <cassert>
#include <limits>

namespace esp::sim {

std::string qos_policy_name(QosPolicy policy) {
  switch (policy) {
    case QosPolicy::kFifo: return "fifo";
    case QosPolicy::kRoundRobin: return "rr";
    case QosPolicy::kWeightedShare: return "wshare";
  }
  return "?";
}

std::optional<QosPolicy> parse_qos_policy(const std::string& name) {
  if (name == "fifo") return QosPolicy::kFifo;
  if (name == "rr" || name == "round-robin") return QosPolicy::kRoundRobin;
  if (name == "wshare" || name == "weighted") return QosPolicy::kWeightedShare;
  return std::nullopt;
}

QosScheduler::QosScheduler(QosPolicy policy, std::size_t lanes)
    : policy_(policy), finish_(lanes, 0.0) {}

std::size_t QosScheduler::pick(const std::vector<LaneState>& lanes,
                               SimTime horizon) {
  assert(lanes.size() == finish_.size());
  constexpr auto kNone = std::numeric_limits<std::size_t>::max();

  // Eligibility: a lane whose request can issue by the time the device
  // frees a slot. If every pending lane is still in the future, fall back
  // to the earliest-ready one (device idles until it arrives).
  SimTime min_ready = std::numeric_limits<double>::infinity();
  for (const LaneState& l : lanes)
    if (l.pending) min_ready = std::min(min_ready, l.ready);
  const SimTime cutoff = std::max(horizon, min_ready);
  const auto eligible = [&](std::size_t i) {
    return lanes[i].pending && lanes[i].ready <= cutoff;
  };

  std::size_t best = kNone;
  switch (policy_) {
    case QosPolicy::kFifo:
      for (std::size_t i = 0; i < lanes.size(); ++i) {
        if (!eligible(i)) continue;
        if (best == kNone || lanes[i].arrival < lanes[best].arrival) best = i;
      }
      break;
    case QosPolicy::kRoundRobin:
      for (std::size_t step = 1; step <= lanes.size(); ++step) {
        const std::size_t i = (cursor_ + step) % lanes.size();
        if (eligible(i)) { best = i; break; }
      }
      break;
    case QosPolicy::kWeightedShare:
      for (std::size_t i = 0; i < lanes.size(); ++i) {
        if (!eligible(i)) continue;
        // Start tag: resume at the virtual clock if the lane was idle.
        const double start = std::max(virtual_time_, finish_[i]);
        if (best == kNone ||
            start < std::max(virtual_time_, finish_[best])) {
          best = i;
        }
      }
      break;
  }
  assert(best != kNone && "pick() requires at least one pending lane");
  return best;
}

void QosScheduler::charge(std::size_t lane, const LaneState& state) {
  assert(lane < finish_.size());
  cursor_ = lane;
  if (policy_ != QosPolicy::kWeightedShare) return;
  const double start = std::max(virtual_time_, finish_[lane]);
  const double weight = state.weight > 0.0 ? state.weight : 1.0;
  virtual_time_ = start;
  finish_[lane] =
      start + static_cast<double>(state.cost < 1 ? 1 : state.cost) / weight;
}

}  // namespace esp::sim
