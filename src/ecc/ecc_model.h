// ECC capability model.
//
// Large-page NAND protects each 1-KB or 2-KB chunk with its own BCH/LDPC
// codeword (the "ECC0..ECC7" units in the paper's Fig. 3), which is what
// makes subpage-granularity writes self-contained: a 4-KB subpage owns a
// whole number of codewords. This model answers two questions:
//   * given a raw bit-error count in one codeword, is it correctable?
//   * given a raw BER, what is the probability a codeword is uncorrectable?
#pragma once

#include <cstdint>

namespace esp::ecc {

struct EccSpec {
  std::uint32_t codeword_bytes = 1024;  ///< protected payload per codeword
  std::uint32_t correctable_bits = 40;  ///< BCH t: max correctable errors

  std::uint32_t codeword_bits() const { return codeword_bytes * 8; }

  /// Highest raw BER at which the *expected* error count still fits within
  /// the correction capability (deterministic threshold used by the
  /// behavioral simulator).
  double max_raw_ber() const {
    return static_cast<double>(correctable_bits) / codeword_bits();
  }
};

class EccModel {
 public:
  EccModel() : EccModel(EccSpec{}) {}
  explicit EccModel(const EccSpec& spec);

  const EccSpec& spec() const { return spec_; }

  /// Deterministic verdict on an observed per-codeword error count.
  bool can_correct(std::uint32_t bit_errors) const {
    return bit_errors <= spec_.correctable_bits;
  }

  /// P(codeword uncorrectable) for i.i.d. bit errors at the given raw BER.
  /// Exact binomial tail computed in log space (stable for n = 8192,
  /// p ~ 1e-3); used by the Monte-Carlo cell benches for smooth curves.
  double uncorrectable_probability(double raw_ber) const;

  /// Number of codewords covering a region of the given byte size
  /// (rounds up; partial codewords are padded on real devices).
  std::uint32_t codewords_for(std::uint64_t bytes) const;

 private:
  EccSpec spec_;
};

}  // namespace esp::ecc
