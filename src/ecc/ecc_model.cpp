#include "ecc/ecc_model.h"

#include <cmath>
#include <stdexcept>

namespace esp::ecc {

EccModel::EccModel(const EccSpec& spec) : spec_(spec) {
  if (spec_.codeword_bytes == 0)
    throw std::invalid_argument("EccModel: codeword_bytes must be > 0");
}

double EccModel::uncorrectable_probability(double raw_ber) const {
  if (raw_ber <= 0.0) return 0.0;
  if (raw_ber >= 1.0) return 1.0;
  const std::uint32_t n = spec_.codeword_bits();
  const std::uint32_t t = spec_.correctable_bits;
  if (t >= n) return 0.0;
  // P(X > t), X ~ Binomial(n, p): accumulate P(X <= t) in log space via the
  // recurrence P(k+1)/P(k) = (n-k)/(k+1) * p/(1-p).
  const double log_p = std::log(raw_ber);
  const double log_q = std::log1p(-raw_ber);
  double log_pk = n * log_q;  // P(X = 0)
  double cdf = std::exp(log_pk);
  for (std::uint32_t k = 0; k < t; ++k) {
    log_pk += std::log(static_cast<double>(n - k)) -
              std::log(static_cast<double>(k + 1)) + log_p - log_q;
    cdf += std::exp(log_pk);
  }
  if (cdf >= 1.0) return 0.0;
  return 1.0 - cdf;
}

std::uint32_t EccModel::codewords_for(std::uint64_t bytes) const {
  return static_cast<std::uint32_t>(
      (bytes + spec_.codeword_bytes - 1) / spec_.codeword_bytes);
}

}  // namespace esp::ecc
