#include "telemetry/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "telemetry/json.h"

namespace esp::telemetry {
namespace {

/// Kind-specific names for the two detail args (JSON keys).
struct ArgNames {
  const char* a0;
  const char* a1;
};

ArgNames arg_names(OpKind kind) {
  switch (kind) {
    case OpKind::kHostWrite:
    case OpKind::kHostRead:
      return {"sectors", "sector"};
    case OpKind::kProgFull: return {"page", nullptr};
    case OpKind::kProgSub: return {"slot", "page"};
    case OpKind::kRead: return {"subpages", nullptr};
    case OpKind::kErase: return {"pe_cycles", nullptr};
    case OpKind::kGcCopy: return {"copied", "evicted"};
    case OpKind::kForwardMigration: return {"to_slot", nullptr};
    case OpKind::kRetentionEvict: return {"evicted", nullptr};
    case OpKind::kWearLevel: return {"relocated", nullptr};
    default: return {nullptr, nullptr};
  }
}

void write_event(std::ostream& os, const TraceEvent& e) {
  JsonWriter w(os);
  w.begin_object();
  w.kv("name", op_name(e.kind));
  w.kv("cat", op_lane(e.kind) == 0   ? "host"
              : op_lane(e.kind) == 1 ? "ftl"
                                     : "nand");
  w.kv("ph", "X");
  w.kv("ts", e.start_us);
  w.kv("dur", std::max(e.dur_us, 0.0));
  w.kv("pid", 0);
  w.kv("tid", static_cast<std::uint64_t>(op_lane(e.kind)));
  w.key("args");
  w.begin_object();
  w.kv("req", static_cast<std::uint64_t>(e.request_id));
  const ArgNames names = arg_names(e.kind);
  if (names.a0) w.kv(names.a0, e.arg0);
  if (names.a1) w.kv(names.a1, e.arg1);
  w.end_object();
  w.end_object();
}

// Flat one-line schema for jq/pandas-style processing; the Chrome format
// keeps the trace_event field names instead.
void write_event_jsonl(std::ostream& os, const TraceEvent& e) {
  JsonWriter w(os);
  w.begin_object();
  w.kv("op", op_name(e.kind));
  w.kv("lane", op_lane(e.kind) == 0   ? "host"
               : op_lane(e.kind) == 1 ? "ftl"
                                      : "nand");
  w.kv("req", static_cast<std::uint64_t>(e.request_id));
  w.kv("start_us", e.start_us);
  w.kv("dur_us", std::max(e.dur_us, 0.0));
  const ArgNames names = arg_names(e.kind);
  if (names.a0) w.kv(names.a0, e.arg0);
  if (names.a1) w.kv(names.a1, e.arg1);
  w.end_object();
}

// Chrome trace metadata ("M") event naming the process or a lane thread,
// so Perfetto/chrome://tracing show host/ftl/nand labels instead of bare
// tids.
void write_metadata(std::ostream& os, const char* what, int tid,
                    const char* name) {
  JsonWriter w(os);
  w.begin_object();
  w.kv("name", what);
  w.kv("ph", "M");
  w.kv("pid", 0);
  w.kv("tid", static_cast<std::uint64_t>(tid));
  w.key("args");
  w.begin_object();
  w.kv("name", name);
  w.end_object();
  w.end_object();
}

}  // namespace

TraceRing::TraceRing(std::size_t capacity)
    : ring_(std::max<std::size_t>(capacity, 1)) {}

void TraceRing::push(const TraceEvent& event) {
  ring_[pushed_ % ring_.size()] = event;
  ++pushed_;
}

std::size_t TraceRing::size() const {
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(pushed_, ring_.size()));
}

std::uint64_t TraceRing::dropped() const {
  return pushed_ > ring_.size() ? pushed_ - ring_.size() : 0;
}

const TraceEvent& TraceRing::at(std::size_t i) const {
  // Oldest retained event sits at pushed_ % capacity once wrapped.
  const std::size_t base =
      pushed_ > ring_.size() ? static_cast<std::size_t>(pushed_ % ring_.size())
                             : 0;
  return ring_[(base + i) % ring_.size()];
}

void TraceRing::clear() { pushed_ = 0; }

void TraceRing::dump_jsonl(std::ostream& os) const {
  for (std::size_t i = 0; i < size(); ++i) {
    write_event_jsonl(os, at(i));
    os << '\n';
  }
}

void TraceRing::dump_chrome(std::ostream& os) const {
  os << "[\n";
  write_metadata(os, "process_name", 0, "espnand");
  static constexpr const char* kLaneNames[] = {"host", "ftl", "nand"};
  for (int tid = 0; tid < 3; ++tid) {
    os << ",\n";
    write_metadata(os, "thread_name", tid, kLaneNames[tid]);
  }
  for (std::size_t i = 0; i < size(); ++i) {
    os << ",\n";
    write_event(os, at(i));
  }
  os << "\n]\n";
}

}  // namespace esp::telemetry
