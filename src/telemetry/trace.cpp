#include "telemetry/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <unordered_map>

#include "telemetry/json.h"

namespace esp::telemetry {
namespace {

/// Kind-specific names for the two detail args (JSON keys).
struct ArgNames {
  const char* a0;
  const char* a1;
};

ArgNames arg_names(OpKind kind) {
  switch (kind) {
    case OpKind::kHostWrite:
    case OpKind::kHostRead:
      return {"sectors", "sector"};
    case OpKind::kProgFull: return {"page", nullptr};
    case OpKind::kProgSub: return {"slot", "page"};
    case OpKind::kRead: return {"subpages", nullptr};
    case OpKind::kErase: return {"pe_cycles", nullptr};
    case OpKind::kGcCopy: return {"copied", "evicted"};
    case OpKind::kForwardMigration: return {"to_slot", nullptr};
    case OpKind::kRetentionEvict: return {"evicted", nullptr};
    case OpKind::kWearLevel: return {"relocated", nullptr};
    default: return {nullptr, nullptr};
  }
}

void write_event(std::ostream& os, const TraceEvent& e) {
  JsonWriter w(os);
  w.begin_object();
  w.kv("name", op_name(e.kind));
  w.kv("cat", op_lane(e.kind) == 0   ? "host"
              : op_lane(e.kind) == 1 ? "ftl"
                                     : "nand");
  w.kv("ph", "X");
  w.kv("ts", e.start_us);
  w.kv("dur", std::max(e.dur_us, 0.0));
  w.kv("pid", 0);
  w.kv("tid", static_cast<std::uint64_t>(op_lane(e.kind)));
  w.key("args");
  w.begin_object();
  w.kv("req", static_cast<std::uint64_t>(e.request_id));
  const ArgNames names = arg_names(e.kind);
  if (names.a0) w.kv(names.a0, e.arg0);
  if (names.a1) w.kv(names.a1, e.arg1);
  w.end_object();
  w.end_object();
}

// Flat one-line schema for jq/pandas-style processing; the Chrome format
// keeps the trace_event field names instead.
void write_event_jsonl(std::ostream& os, const TraceEvent& e) {
  JsonWriter w(os);
  w.begin_object();
  w.kv("op", op_name(e.kind));
  w.kv("lane", op_lane(e.kind) == 0   ? "host"
               : op_lane(e.kind) == 1 ? "ftl"
                                      : "nand");
  w.kv("req", static_cast<std::uint64_t>(e.request_id));
  w.kv("start_us", e.start_us);
  w.kv("dur_us", std::max(e.dur_us, 0.0));
  const ArgNames names = arg_names(e.kind);
  if (names.a0) w.kv(names.a0, e.arg0);
  if (names.a1) w.kv(names.a1, e.arg1);
  w.end_object();
}

// Chrome flow event ("s" start / "t" step / "f" finish) linking a host
// request's span to the FTL/NAND child spans executed on its behalf, so
// Perfetto draws causality arrows across the three lanes instead of three
// disconnected tracks. Steps/finishes bind to the enclosing slice
// ("bp":"e") that starts at the same timestamp.
void write_flow(std::ostream& os, char phase, std::uint32_t request_id,
                SimTime ts, std::uint32_t tid) {
  JsonWriter w(os);
  w.begin_object();
  w.kv("name", "req");
  w.kv("cat", "flow");
  char ph[2] = {phase, 0};
  w.kv("ph", ph);
  if (phase != 's') w.kv("bp", "e");
  w.kv("id", static_cast<std::uint64_t>(request_id));
  w.kv("ts", ts);
  w.kv("pid", 0);
  w.kv("tid", static_cast<std::uint64_t>(tid));
  w.end_object();
}

// Chrome trace metadata ("M") event naming the process or a lane thread,
// so Perfetto/chrome://tracing show host/ftl/nand labels instead of bare
// tids.
void write_metadata(std::ostream& os, const char* what, int tid,
                    const char* name) {
  JsonWriter w(os);
  w.begin_object();
  w.kv("name", what);
  w.kv("ph", "M");
  w.kv("pid", 0);
  w.kv("tid", static_cast<std::uint64_t>(tid));
  w.key("args");
  w.begin_object();
  w.kv("name", name);
  w.end_object();
  w.end_object();
}

}  // namespace

TraceRing::TraceRing(std::size_t capacity)
    : ring_(std::max<std::size_t>(capacity, 1)) {}

void TraceRing::push(const TraceEvent& event) {
  ring_[pushed_ % ring_.size()] = event;
  ++pushed_;
}

std::size_t TraceRing::size() const {
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(pushed_, ring_.size()));
}

std::uint64_t TraceRing::dropped() const {
  return pushed_ > ring_.size() ? pushed_ - ring_.size() : 0;
}

const TraceEvent& TraceRing::at(std::size_t i) const {
  // Oldest retained event sits at pushed_ % capacity once wrapped.
  const std::size_t base =
      pushed_ > ring_.size() ? static_cast<std::size_t>(pushed_ % ring_.size())
                             : 0;
  return ring_[(base + i) % ring_.size()];
}

void TraceRing::clear() { pushed_ = 0; }

void TraceRing::dump_jsonl(std::ostream& os) const {
  for (std::size_t i = 0; i < size(); ++i) {
    write_event_jsonl(os, at(i));
    os << '\n';
  }
}

void TraceRing::dump_chrome(std::ostream& os) const {
  os << "[\n";
  write_metadata(os, "process_name", 0, "espnand");
  static constexpr const char* kLaneNames[] = {"host", "ftl", "nand"};
  for (int tid = 0; tid < 3; ++tid) {
    os << ",\n";
    write_metadata(os, "thread_name", tid, kLaneNames[tid]);
  }
  // Per-request flow bookkeeping: a flow is emitted only for requests
  // whose host span AND at least one child span are still in the ring
  // (wraparound can orphan either side).
  struct FlowInfo {
    bool host = false;
    std::uint32_t children = 0;
  };
  std::unordered_map<std::uint32_t, FlowInfo> flows;
  for (std::size_t i = 0; i < size(); ++i) {
    const TraceEvent& e = at(i);
    if (e.request_id == 0) continue;
    FlowInfo& info = flows[e.request_id];
    if (op_lane(e.kind) == 0)
      info.host = true;
    else
      ++info.children;
  }
  for (std::size_t i = 0; i < size(); ++i) {
    const TraceEvent& e = at(i);
    os << ",\n";
    write_event(os, e);
    if (e.request_id == 0) continue;
    auto it = flows.find(e.request_id);
    if (it == flows.end() || !it->second.host || it->second.children == 0)
      continue;
    if (op_lane(e.kind) == 0) {
      os << ",\n";
      write_flow(os, 's', e.request_id, e.start_us, 0);
    } else {
      --it->second.children;
      os << ",\n";
      write_flow(os, it->second.children == 0 ? 'f' : 't', e.request_id,
                 e.start_us, op_lane(e.kind));
    }
  }
  os << "\n]\n";
}

void TraceRing::save_state(util::StateWriter& w) const {
  w.tag("TRNG");
  w.pod_vec(ring_);
  w.u64(pushed_);
}

void TraceRing::load_state(util::StateReader& r) {
  r.tag("TRNG");
  std::vector<TraceEvent> ring;
  r.pod_vec(ring);
  if (ring.size() != ring_.size())
    throw std::runtime_error("TraceRing::load_state: capacity mismatch");
  ring_ = std::move(ring);
  pushed_ = r.u64();
}

}  // namespace esp::telemetry
