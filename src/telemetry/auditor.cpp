#include "telemetry/auditor.h"

#include <cstdio>
#include <stdexcept>

namespace esp::telemetry {

std::string format_cause_chain(std::span<const CauseFrame> chain) {
  if (chain.empty()) return "host";
  std::string out;
  for (const CauseFrame& frame : chain) {
    if (!out.empty()) out += '>';
    out += cause_name(frame.cause);
    char detail[32];
    std::snprintf(detail, sizeof detail, "(%llu)",
                  static_cast<unsigned long long>(frame.detail));
    out += detail;
  }
  return out;
}

Auditor::Auditor(const AuditorConfig& config)
    : cfg_(config),
      blocks_(static_cast<std::size_t>(config.chips) *
              config.blocks_per_chip) {}

Auditor::BlockState& Auditor::state(std::uint32_t chip, std::uint32_t block) {
  return blocks_[static_cast<std::size_t>(chip) * cfg_.blocks_per_chip +
                 block];
}

std::uint8_t Auditor::pool_id(const char* pool) {
  for (std::size_t i = 0; i < pool_names_.size(); ++i)
    if (pool_names_[i] == pool) return static_cast<std::uint8_t>(i + 1);
  if (pool_names_.size() >= 250) return 0;
  pool_names_.emplace_back(pool);
  const auto id = static_cast<std::uint8_t>(pool_names_.size());
  if (pool_names_.back() == "sub") sub_pool_id_ = id;
  return id;
}

void Auditor::reset_cycle(BlockState& bs) {
  bs.mode = 0;
  bs.next_page = 0;
  bs.pages_programmed = 0;
  bs.next_slot.assign(cfg_.pages_per_block, 0);
}

void Auditor::fail(const std::string& what, std::uint32_t chip,
                   std::uint32_t block, std::span<const CauseFrame> chain) {
  ++violation_count_;
  char where[64];
  std::snprintf(where, sizeof where, " [chip %u block %u] cause chain: ",
                chip, block);
  const std::string msg =
      "auditor: " + what + where + format_cause_chain(chain);
  if (cfg_.fail_fast) throw std::logic_error(msg);
  if (violations_.size() < cfg_.max_violations) violations_.push_back(msg);
}

void Auditor::on_op(const OpEvent& event, std::span<const CauseFrame> chain) {
  switch (event.kind) {
    case OpKind::kProgSub:
      ++ops_checked_;
      check_prog_sub(event, chain);
      break;
    case OpKind::kProgFull:
      ++ops_checked_;
      check_prog_full(event, chain);
      break;
    case OpKind::kErase:
      ++ops_checked_;
      check_erase(event, chain);
      break;
    default:
      break;
  }
}

void Auditor::check_prog_sub(const OpEvent& event,
                             std::span<const CauseFrame> chain) {
  if (event.chip == kNoChip) return;
  BlockState& bs = state(event.chip, event.block);
  if (bs.next_slot.empty()) bs.next_slot.assign(cfg_.pages_per_block, 0);
  const auto page = static_cast<std::uint32_t>(event.arg1);
  const auto slot = static_cast<std::uint32_t>(event.arg0);
  if (page >= cfg_.pages_per_block) {
    fail("subpage program beyond block (page " + std::to_string(page) + ")",
         event.chip, event.block, chain);
    return;
  }
  if (slot >= cfg_.subpages_per_page) {
    fail("subpage program to slot " + std::to_string(slot) +
             " beyond Npp-1",
         event.chip, event.block, chain);
    return;
  }
  if (bs.mode == 2)
    fail("subpage program into a full-page block (mode mix within one "
         "erase cycle)",
         event.chip, event.block, chain);
  bs.mode = 1;
  const std::uint32_t expected = bs.next_slot[page];
  if (slot < expected) {
    fail("subpage slot " + std::to_string(slot) + " of page " +
             std::to_string(page) +
             " re-programmed without an erase (frontier at " +
             std::to_string(expected) + ")",
         event.chip, event.block, chain);
    return;
  }
  if (bs.synced) {
    if (!bs.allocated)
      fail("subpage program to a block no pool owns", event.chip,
           event.block, chain);
    if (slot != expected)
      fail("subpage program to non-frontier slot " + std::to_string(slot) +
               " of page " + std::to_string(page) + " (frontier at " +
               std::to_string(expected) + ")",
           event.chip, event.block, chain);
    if (sub_pool_id_ != 0 && bs.pool == sub_pool_id_ && slot != bs.level)
      fail("subpage program to slot " + std::to_string(slot) +
               " outside the block's current ESP level " +
               std::to_string(bs.level),
           event.chip, event.block, chain);
  }
  if (bs.next_slot[page] == 0) ++bs.pages_programmed;
  bs.next_slot[page] = static_cast<std::uint8_t>(slot + 1);
}

void Auditor::check_prog_full(const OpEvent& event,
                              std::span<const CauseFrame> chain) {
  if (event.chip == kNoChip) return;
  BlockState& bs = state(event.chip, event.block);
  const auto page = static_cast<std::uint32_t>(event.arg0);
  if (page >= cfg_.pages_per_block) {
    fail("full-page program beyond block (page " + std::to_string(page) +
             ")",
         event.chip, event.block, chain);
    return;
  }
  if (bs.mode == 1)
    fail("full-page program into a subpage block (mode mix within one "
         "erase cycle)",
         event.chip, event.block, chain);
  bs.mode = 2;
  if (page < bs.next_page) {
    fail("full page " + std::to_string(page) +
             " re-programmed without an erase (frontier at " +
             std::to_string(bs.next_page) + ")",
         event.chip, event.block, chain);
    return;
  }
  if (bs.synced) {
    if (!bs.allocated)
      fail("full-page program to a block no pool owns", event.chip,
           event.block, chain);
    if (page != bs.next_page)
      fail("non-sequential full-page program to page " +
               std::to_string(page) + " (frontier at " +
               std::to_string(bs.next_page) + ")",
           event.chip, event.block, chain);
  }
  bs.next_page = page + 1;
  ++bs.pages_programmed;
}

void Auditor::check_erase(const OpEvent& event,
                          std::span<const CauseFrame> /*chain*/) {
  if (event.chip == kNoChip) return;
  BlockState& bs = state(event.chip, event.block);
  reset_cycle(bs);
  bs.synced = true;
  bs.level = 0;
}

void Auditor::on_block(const BlockLifecycleEvent& event,
                       std::span<const CauseFrame> chain) {
  if (event.chip >= cfg_.chips || event.block >= cfg_.blocks_per_chip)
    return;
  BlockState& bs = state(event.chip, event.block);
  switch (event.kind) {
    case BlockEventKind::kAllocated:
      if (bs.synced && bs.allocated)
        fail("block allocated twice without a retire", event.chip,
             event.block, chain);
      if (bs.synced && bs.mode != 0)
        fail("non-erased block handed out by the allocator", event.chip,
             event.block, chain);
      // The allocator only hands out erased blocks, so allocation syncs
      // the model even if the erase predated telemetry attach.
      if (!bs.synced) reset_cycle(bs);
      bs.synced = true;
      bs.allocated = true;
      bs.pool = pool_id(event.pool);
      bs.level = event.level;
      break;
    case BlockEventKind::kLevelAdvanced:
      if (bs.synced && event.level != bs.level + 1)
        fail("ESP level advanced from " + std::to_string(bs.level) +
                 " to " + std::to_string(event.level) + " (must be +1)",
             event.chip, event.block, chain);
      if (bs.synced && event.valid > bs.pages_programmed)
        fail("valid count " + std::to_string(event.valid) +
                 " exceeds pages programmed this cycle (" +
                 std::to_string(bs.pages_programmed) + ")",
             event.chip, event.block, chain);
      bs.level = event.level;
      break;
    case BlockEventKind::kErased:
      if (event.valid != 0)
        fail("erase of a block still holding " +
                 std::to_string(event.valid) +
                 " valid sectors (must be fully invalid or relocated)",
             event.chip, event.block, chain);
      break;
    case BlockEventKind::kRetired:
      bs.allocated = false;
      bs.pool = 0;
      bs.level = 0;
      break;
    case BlockEventKind::kConverted:
    case BlockEventKind::kCount:
      break;
  }
}

void Auditor::save_state(util::StateWriter& w) const {
  w.tag("AUDT");
  w.u64(blocks_.size());
  for (const BlockState& bs : blocks_) {
    w.b(bs.synced);
    w.b(bs.allocated);
    w.u8(bs.mode);
    w.u8(bs.pool);
    w.u32(bs.level);
    w.u32(bs.next_page);
    w.u32(bs.pages_programmed);
    w.pod_vec(bs.next_slot);
  }
  w.u64(pool_names_.size());
  for (const std::string& name : pool_names_) w.str(name);
  w.u8(sub_pool_id_);
  w.u64(ops_checked_);
  w.u64(violation_count_);
  w.u64(violations_.size());
  for (const std::string& v : violations_) w.str(v);
}

void Auditor::load_state(util::StateReader& r) {
  r.tag("AUDT");
  if (r.u64() != blocks_.size())
    throw std::runtime_error("Auditor::load_state: geometry mismatch");
  for (BlockState& bs : blocks_) {
    bs.synced = r.b();
    bs.allocated = r.b();
    bs.mode = r.u8();
    bs.pool = r.u8();
    bs.level = r.u32();
    bs.next_page = r.u32();
    bs.pages_programmed = r.u32();
    r.pod_vec(bs.next_slot);
  }
  pool_names_.clear();
  const std::uint64_t n_pools = r.u64();
  for (std::uint64_t i = 0; i < n_pools; ++i)
    pool_names_.push_back(r.str());
  sub_pool_id_ = r.u8();
  ops_checked_ = r.u64();
  violation_count_ = r.u64();
  violations_.clear();
  const std::uint64_t n_violations = r.u64();
  for (std::uint64_t i = 0; i < n_violations; ++i)
    violations_.push_back(r.str());
}

}  // namespace esp::telemetry
