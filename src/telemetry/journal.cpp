#include "telemetry/journal.h"

#include <cstdio>

namespace esp::telemetry {
namespace {

// Buffer large enough for the longest line (op with a deep cause chain).
constexpr std::size_t kLineCap = 768;

// "%.10g" round-trips every time value this simulator produces (sums of
// microsecond-scale latencies) without the noise of full %.17g output.
void fmt_time(char* out, std::size_t cap, SimTime t) {
  std::snprintf(out, cap, "%.10g", t);
}

}  // namespace

Journal::Journal(std::ostream& os, const JournalHeader& header,
                 std::uint64_t max_events, bool resume)
    : os_(os),
      blocks_per_chip_(header.blocks_per_chip),
      max_events_(max_events),
      last_pool_(static_cast<std::size_t>(header.chips) *
                 header.blocks_per_chip) {
  if (resume) return;  // appending after a restore; hdr already on disk
  char shard_tag[64] = "";
  if (header.shards > 1)
    std::snprintf(shard_tag, sizeof shard_tag, ",\"shard\":%u,\"shards\":%u",
                  header.shard, header.shards);
  char buf[kLineCap];
  std::snprintf(buf, sizeof buf,
                "{\"v\":%d,\"t\":\"hdr\",\"ftl\":\"%s\",\"chips\":%u,"
                "\"blocks_per_chip\":%u,\"pages_per_block\":%u,\"subs\":%u,"
                "\"page_bytes\":%llu,\"seed\":%llu%s}",
                kSchemaVersion, header.ftl.c_str(), header.chips,
                header.blocks_per_chip, header.pages_per_block,
                header.subpages_per_page,
                static_cast<unsigned long long>(header.page_bytes),
                static_cast<unsigned long long>(header.seed), shard_tag);
  write_line(buf);
}

bool Journal::admit() {
  if (finished_) return false;
  if (max_events_ != 0 && events_ >= max_events_) {
    ++truncated_;
    return false;
  }
  ++events_;
  return true;
}

void Journal::write_line(const char* buf) {
  os_ << buf << '\n';
}

std::string Journal::chain_string(std::span<const CauseFrame> chain) const {
  std::string out;
  for (const CauseFrame& frame : chain) {
    if (!out.empty()) out += '>';
    out += cause_name(frame.cause);
  }
  return out;
}

void Journal::on_op(const OpEvent& event, Cause cause,
                    std::span<const CauseFrame> chain,
                    std::uint32_t request_id) {
  if (event.end > last_time_) last_time_ = event.end;

  char start_s[32], dur_s[32];
  fmt_time(start_s, sizeof start_s, event.start);
  fmt_time(dur_s, sizeof dur_s, event.end - event.start);
  char buf[kLineCap];

  switch (event.kind) {
    case OpKind::kHostWrite:
    case OpKind::kHostTrim:
    case OpKind::kHostFlush: {
      // arg0 = sector count, arg1 = start sector (driver's end_request).
      if (!admit()) return;
      std::snprintf(buf, sizeof buf,
                    "{\"t\":\"host\",\"op\":\"%s\",\"req\":%u,"
                    "\"sectors\":%llu,\"sector\":%llu,\"start_us\":%s,"
                    "\"dur_us\":%s}",
                    op_name(event.kind), request_id,
                    static_cast<unsigned long long>(event.arg0),
                    static_cast<unsigned long long>(event.arg1), start_s,
                    dur_s);
      write_line(buf);
      return;
    }
    case OpKind::kHostRead:
    case OpKind::kRead:
      // Reads never amplify writes; skipping them bounds journal size.
      return;
    case OpKind::kProgFull:
    case OpKind::kProgSub:
    case OpKind::kErase: {
      if (!admit()) return;
      const std::string chain_s = chain_string(chain);
      char addr[96];
      if (event.kind == OpKind::kProgFull) {
        // arg0 = page index.
        std::snprintf(addr, sizeof addr, "\"page\":%llu",
                      static_cast<unsigned long long>(event.arg0));
      } else if (event.kind == OpKind::kProgSub) {
        // arg0 = slot index, arg1 = page index.
        std::snprintf(addr, sizeof addr, "\"page\":%llu,\"slot\":%llu",
                      static_cast<unsigned long long>(event.arg1),
                      static_cast<unsigned long long>(event.arg0));
      } else {
        // arg0 = P/E cycle count after the erase.
        std::snprintf(addr, sizeof addr, "\"pe\":%llu",
                      static_cast<unsigned long long>(event.arg0));
      }
      std::snprintf(buf, sizeof buf,
                    "{\"t\":\"op\",\"op\":\"%s\",\"cause\":\"%s\","
                    "\"chain\":\"%s\",\"req\":%u,\"chip\":%u,\"block\":%u,"
                    "%s,\"start_us\":%s,\"dur_us\":%s}",
                    op_name(event.kind), cause_name(cause), chain_s.c_str(),
                    request_id, event.chip, event.block, addr, start_s,
                    dur_s);
      write_line(buf);
      return;
    }
    default:
      break;
  }

  // FTL mechanism lane: gc_copy, rmw, forward_migration, retention_evict,
  // wear_level.
  if (!admit()) return;
  std::snprintf(buf, sizeof buf,
                "{\"t\":\"mech\",\"op\":\"%s\",\"req\":%u,\"a0\":%llu,"
                "\"a1\":%llu,\"start_us\":%s,\"dur_us\":%s}",
                op_name(event.kind), request_id,
                static_cast<unsigned long long>(event.arg0),
                static_cast<unsigned long long>(event.arg1), start_s, dur_s);
  write_line(buf);
}

void Journal::on_scope(char phase, const CauseFrame& frame) {
  if (!admit()) return;
  char at_s[32];
  fmt_time(at_s, sizeof at_s, phase == 'B' ? frame.at : last_time_);
  char buf[kLineCap];
  std::snprintf(buf, sizeof buf,
                "{\"t\":\"scope\",\"ph\":\"%c\",\"cause\":\"%s\","
                "\"detail\":%llu,\"us\":%s}",
                phase, cause_name(frame.cause),
                static_cast<unsigned long long>(frame.detail), at_s);
  write_line(buf);
}

void Journal::on_block(const BlockLifecycleEvent& event) {
  if (event.at > last_time_) last_time_ = event.at;
  const std::size_t idx =
      static_cast<std::size_t>(event.chip) * blocks_per_chip_ + event.block;

  char at_s[32];
  fmt_time(at_s, sizeof at_s, event.at);
  char buf[kLineCap];

  if (event.kind == BlockEventKind::kAllocated && idx < last_pool_.size()) {
    // Resolve the pool name to a stable small id and derive a `converted`
    // line when the owning pool changed since the last allocation.
    std::uint8_t pool_id = 0;
    for (std::size_t i = 0; i < pool_names_.size(); ++i)
      if (pool_names_[i] == event.pool) pool_id = static_cast<std::uint8_t>(i + 1);
    if (pool_id == 0 && pool_names_.size() < 250) {
      pool_names_.emplace_back(event.pool);
      pool_id = static_cast<std::uint8_t>(pool_names_.size());
    }
    const std::uint8_t prev = last_pool_[idx];
    if (prev != 0 && pool_id != 0 && prev != pool_id) {
      if (admit()) {
        std::snprintf(buf, sizeof buf,
                      "{\"t\":\"blk\",\"ev\":\"converted\",\"pool\":\"%s\","
                      "\"from\":\"%s\",\"chip\":%u,\"block\":%u,\"pe\":%u,"
                      "\"us\":%s}",
                      event.pool, pool_names_[prev - 1].c_str(), event.chip,
                      event.block, event.pe_cycles, at_s);
        write_line(buf);
      }
    }
    if (pool_id != 0) last_pool_[idx] = pool_id;
  }

  if (!admit()) return;
  std::snprintf(buf, sizeof buf,
                "{\"t\":\"blk\",\"ev\":\"%s\",\"pool\":\"%s\",\"chip\":%u,"
                "\"block\":%u,\"level\":%u,\"valid\":%u,\"pe\":%u,\"us\":%s}",
                block_event_name(event.kind), event.pool, event.chip,
                event.block, event.level, event.valid, event.pe_cycles, at_s);
  write_line(buf);
}

void Journal::finish() {
  if (finished_) return;
  char buf[kLineCap];
  std::snprintf(buf, sizeof buf,
                "{\"t\":\"end\",\"events\":%llu,\"truncated\":%llu}",
                static_cast<unsigned long long>(events_),
                static_cast<unsigned long long>(truncated_));
  write_line(buf);
  os_.flush();
  finished_ = true;
}

void Journal::save_state(util::StateWriter& w) const {
  w.tag("JRNL");
  w.u64(events_);
  w.u64(truncated_);
  w.f64(last_time_);
  w.pod_vec(last_pool_);
  w.u64(pool_names_.size());
  for (const std::string& name : pool_names_) w.str(name);
}

void Journal::load_state(util::StateReader& r) {
  r.tag("JRNL");
  events_ = r.u64();
  truncated_ = r.u64();
  last_time_ = r.f64();
  std::vector<std::uint8_t> pools;
  r.pod_vec(pools);
  if (pools.size() != last_pool_.size())
    throw std::runtime_error("Journal::load_state: geometry mismatch");
  last_pool_ = std::move(pools);
  pool_names_.clear();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) pool_names_.push_back(r.str());
}

}  // namespace esp::telemetry
