// Telemetry recording interface seen by the instrumented layers.
//
// The simulator layers (nand::NandDevice, the FTL pools and FTLs, the
// driver) hold a nullable `Sink*` and report two kinds of facts through it:
//
//   * op events -- one per flash/FTL operation (program, read, erase,
//     GC copy, RMW, forward migration, retention eviction, ...), carrying
//     the operation's simulated [start, end) interval and two op-specific
//     detail arguments;
//   * named metrics -- registered once at attach time into the sink's
//     MetricsRegistry (counters can be *bound* to existing struct fields,
//     so the hot-path increment stays a plain `++stats_.field`);
//   * cause scopes -- RAII windows (CauseScope) around FTL mechanisms
//     (GC, RMW, flush, forward migration, retention eviction, wear
//     leveling) so flash ops recorded inside them attribute to a cause;
//   * block lifecycle events -- allocation / frontier-advance / erase /
//     retire transitions of physical blocks (see causes.h).
//
// With no sink attached, instrumentation compiles to a null-pointer check;
// layers must guard every call with `if (sink_)` (CauseScope is null-safe).
#pragma once

#include <cstdint>

#include "telemetry/causes.h"
#include "util/sim_time.h"

namespace esp::telemetry {

class MetricsRegistry;

/// Operation kinds recorded as op events. Host-level kinds are emitted by
/// the driver, FTL-level kinds by the FTLs/pools, flash-level kinds by the
/// NAND device.
enum class OpKind : std::uint8_t {
  // Host request lane (driver).
  kHostWrite = 0,
  kHostRead,
  kHostFlush,
  kHostTrim,
  // Flash command lane (nand::NandDevice).
  kProgFull,  ///< arg0 = page index
  kProgSub,   ///< arg0 = slot index (Npp - 1), arg1 = page index
  kRead,      ///< arg0 = 1 for a subpage read, Nsub for a full-page read
  kErase,     ///< arg0 = P/E cycle count after the erase
  // FTL mechanism lane (pools / FTLs).
  kGcCopy,           ///< arg0 = sectors relocated, arg1 = sectors evicted
  kRmw,              ///< read-modify-write of one logical page
  kForwardMigration, ///< arg0 = destination slot index
  kRetentionEvict,   ///< arg0 = sectors evicted by the retention scan
  kWearLevel,        ///< arg0 = sectors relocated by static wear leveling
  kCount,
};

inline constexpr std::size_t kOpKindCount =
    static_cast<std::size_t>(OpKind::kCount);

/// Stable metric/trace name of an op kind.
constexpr const char* op_name(OpKind kind) {
  switch (kind) {
    case OpKind::kHostWrite: return "host_write";
    case OpKind::kHostRead: return "host_read";
    case OpKind::kHostFlush: return "host_flush";
    case OpKind::kHostTrim: return "host_trim";
    case OpKind::kProgFull: return "prog_full";
    case OpKind::kProgSub: return "prog_sub";
    case OpKind::kRead: return "read";
    case OpKind::kErase: return "erase";
    case OpKind::kGcCopy: return "gc_copy";
    case OpKind::kRmw: return "rmw";
    case OpKind::kForwardMigration: return "forward_migration";
    case OpKind::kRetentionEvict: return "retention_evict";
    case OpKind::kWearLevel: return "wear_level";
    case OpKind::kCount: break;
  }
  return "unknown";
}

/// chip/block sentinel for OpEvents without a physical block address.
inline constexpr std::uint32_t kNoChip = 0xFFFFFFFFu;

/// One recorded operation: a closed simulated-time span plus two
/// kind-specific detail arguments (see OpKind comments). Flash-lane events
/// additionally carry the physical chip/block they touched so journal and
/// auditor sinks can follow per-block state; host/FTL-lane events leave
/// chip at kNoChip.
struct OpEvent {
  OpKind kind = OpKind::kCount;
  SimTime start = 0.0;
  SimTime end = 0.0;
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
  std::uint32_t chip = kNoChip;
  std::uint32_t block = 0;
};

class Sink {
 public:
  virtual ~Sink() = default;

  /// Records one completed operation (trace ring + per-op histograms).
  virtual void record_op(const OpEvent& event) = 0;

  /// Non-virtual per-op interest filter: true when some attached consumer
  /// wants events of this kind. High-frequency call sites (the device's
  /// read path, the FTLs' RMW/GC-copy records) may check it first and skip
  /// constructing + dispatching an OpEvent nobody will read — e.g. an
  /// always-on health stream consumes programs and erases but not reads.
  /// Conservative by default (everything); implementations narrow it.
  bool wants_op(OpKind kind) const {
    return (op_mask_ & (1u << static_cast<unsigned>(kind))) != 0;
  }

  /// Registry for attach-time metric registration.
  virtual MetricsRegistry& registry() = 0;

  /// Opens/closes a cause scope; flash ops recorded while a scope is open
  /// are attributed to the innermost cause (see causes.h). Base default:
  /// no-op, so sinks that do not attribute (tests, custom sinks) need not
  /// override.
  virtual void push_cause(Cause /*cause*/, std::uint64_t /*detail*/,
                          SimTime /*at*/) {}
  virtual void pop_cause() {}

  /// Records one block lifecycle transition. Base default: no-op.
  virtual void record_block(const BlockLifecycleEvent& /*event*/) {}

 protected:
  /// Narrows (or restores) the wants_op() filter; static_assert keeps the
  /// kind bits inside the mask word.
  static_assert(kOpKindCount <= 32);
  void set_op_mask(std::uint32_t mask) { op_mask_ = mask; }

 private:
  std::uint32_t op_mask_ = ~0u;
};

/// Null-safe RAII cause scope: pushes on construction, pops on
/// destruction. Safe to construct with a null sink (does nothing), which
/// keeps call sites free of `if (sink_)` branches around whole mechanisms.
class CauseScope {
 public:
  CauseScope(Sink* sink, Cause cause, std::uint64_t detail, SimTime at)
      : sink_(sink) {
    if (sink_) sink_->push_cause(cause, detail, at);
  }
  ~CauseScope() {
    if (sink_) sink_->pop_cause();
  }
  CauseScope(const CauseScope&) = delete;
  CauseScope& operator=(const CauseScope&) = delete;

 private:
  Sink* sink_;
};

}  // namespace esp::telemetry
