// Cause taxonomy for causal attribution of physical flash operations.
//
// Every physical program/erase the NAND device records is attributed to
// exactly one *cause*: the innermost mechanism scope active when the op
// executes (empty stack = a host-path write). The FTLs and pools open
// scopes around their mechanisms (GC passes, RMW merges, forward
// migrations, retention evictions, wear leveling, buffer flushes), so a
// nested chain like
//
//     host write -> buffer flush -> GC of block B -> forward migration
//
// is visible both as per-cause counters (Telemetry) and as the full chain
// on each journaled event (Journal). Attribution is structural: each flash
// op increments exactly one cause bucket, so the per-cause decomposition
// sums bit-exactly to the aggregate device counters.
//
// Block lifecycle transitions (allocated, frontier level advanced, erased,
// retired) are reported through the same sink as BlockLifecycleEvents;
// the Journal derives sub<->full *conversions* from allocation events
// whose pool differs from the block's previous owner.
#pragma once

#include <cstdint>

#include "util/sim_time.h"

namespace esp::telemetry {

/// Why a physical flash operation happened. kHost is the default when no
/// mechanism scope is open; the others are pushed by the FTLs/pools.
enum class Cause : std::uint8_t {
  kHost = 0,          ///< host write path (buffered or sync)
  kRmw,               ///< read-modify-write service of a small write
  kFlush,             ///< explicit host flush draining the write buffer
  kGcCopy,            ///< garbage-collection pass (copies + erase)
  kForwardMigration,  ///< ESP forward migration into the next slot
  kRetentionEvict,    ///< retention-scan eviction to the full-page region
  kWearLevel,         ///< static wear-leveling relocation
  kCount,
};

inline constexpr std::size_t kCauseCount =
    static_cast<std::size_t>(Cause::kCount);

/// Stable metric/journal name of a cause.
constexpr const char* cause_name(Cause cause) {
  switch (cause) {
    case Cause::kHost: return "host";
    case Cause::kRmw: return "rmw";
    case Cause::kFlush: return "flush";
    case Cause::kGcCopy: return "gc_copy";
    case Cause::kForwardMigration: return "forward_migration";
    case Cause::kRetentionEvict: return "retention_evict";
    case Cause::kWearLevel: return "wear_level";
    case Cause::kCount: break;
  }
  return "unknown";
}

/// One frame of the cause stack: the mechanism plus a mechanism-specific
/// detail (victim block index, destination slot, logical page, ...).
struct CauseFrame {
  Cause cause = Cause::kHost;
  std::uint64_t detail = 0;
  SimTime at = 0.0;  ///< simulated time the scope opened
};

/// Block lifecycle transitions reported by the pools.
enum class BlockEventKind : std::uint8_t {
  kAllocated,      ///< taken from the shared allocator by a pool
  kLevelAdvanced,  ///< ESP frontier advanced to the next subpage slot
  kConverted,      ///< re-allocated under a different pool (journal-derived)
  kErased,         ///< physically erased by its pool
  kRetired,        ///< returned to the shared allocator
  kCount,
};

constexpr const char* block_event_name(BlockEventKind kind) {
  switch (kind) {
    case BlockEventKind::kAllocated: return "allocated";
    case BlockEventKind::kLevelAdvanced: return "level_advanced";
    case BlockEventKind::kConverted: return "converted";
    case BlockEventKind::kErased: return "erased";
    case BlockEventKind::kRetired: return "retired";
    case BlockEventKind::kCount: break;
  }
  return "unknown";
}

struct BlockLifecycleEvent {
  BlockEventKind kind = BlockEventKind::kCount;
  std::uint32_t chip = 0;
  std::uint32_t block = 0;
  const char* pool = "";        ///< owning pool: "full" | "sub" | "fine"
  std::uint32_t level = 0;      ///< ESP level (subpage pool; 0 elsewhere)
  std::uint32_t valid = 0;      ///< valid sectors/pages at the transition
  std::uint32_t pe_cycles = 0;  ///< block P/E count at the transition
  SimTime at = 0.0;
};

}  // namespace esp::telemetry
