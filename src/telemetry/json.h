// Minimal streaming JSON writer used by the telemetry exporters and the
// bench JSON outputs. No external dependencies; handles only what the
// exporters need: objects, arrays, string/number/bool values, escaping,
// and non-finite doubles (emitted as null, per strict JSON).
#pragma once

#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace esp::telemetry {

inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Comma/nesting bookkeeping for hand-rolled JSON output. Usage:
///
///   JsonWriter w(os);
///   w.begin_object();
///   w.key("iops"); w.value(123.4);
///   w.key("ops");  w.begin_array(); w.value(1); w.value(2); w.end_array();
///   w.end_object();
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  void begin_object() {
    separate();
    os_ << '{';
    stack_.push_back(false);
  }
  void end_object() {
    stack_.pop_back();
    os_ << '}';
  }
  void begin_array() {
    separate();
    os_ << '[';
    stack_.push_back(false);
  }
  void end_array() {
    stack_.pop_back();
    os_ << ']';
  }

  void key(std::string_view k) {
    separate();
    os_ << '"' << json_escape(k) << "\":";
    pending_key_ = true;
  }

  void value(double v) {
    separate();
    if (!std::isfinite(v)) {
      os_ << "null";
      return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    os_ << buf;
  }
  void value(std::uint64_t v) {
    separate();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    os_ << buf;
  }
  void value(std::int64_t v) {
    separate();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRId64, v);
    os_ << buf;
  }
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(bool v) {
    separate();
    os_ << (v ? "true" : "false");
  }
  void value(std::string_view v) {
    separate();
    os_ << '"' << json_escape(v) << '"';
  }
  void value(const char* v) { value(std::string_view(v)); }

  /// key + value in one call.
  template <typename T>
  void kv(std::string_view k, T v) {
    key(k);
    value(v);
  }

  /// Raw newline between top-level-ish items (cosmetic only).
  void newline() { os_ << '\n'; }

 private:
  void separate() {
    if (pending_key_) {
      // The value completing a "key": pair -- no comma.
      pending_key_ = false;
      return;
    }
    if (!stack_.empty()) {
      if (stack_.back()) os_ << ',';
      stack_.back() = true;
    }
  }

  std::ostream& os_;
  std::vector<bool> stack_;  ///< per nesting level: "has prior element"
  bool pending_key_ = false;
};

}  // namespace esp::telemetry
