// Telemetry exporters: serialize a Telemetry facade to files/streams.
//
// All output is deterministic (name-ordered registries, fixed field order)
// so runs are machine-diffable. Formats:
//   * metrics JSON  -- counters, gauges, per-op histogram summaries, the
//     time-series samples, and trace-ring occupancy, one object;
//   * trace         -- Chrome trace_event (".json": load in
//     chrome://tracing / Perfetto) or JSONL (one event per line);
//   * samples CSV   -- TimeSeriesSampler::write_csv schema.
#pragma once

#include <ostream>
#include <string>

namespace esp::telemetry {

class Telemetry;

/// Writes the full metrics document (counters/gauges/histograms/samples).
void write_metrics_json(std::ostream& os, const Telemetry& telemetry);

/// Writes the trace ring; Chrome trace_event format when `path` ends in
/// ".json", JSONL otherwise.
bool write_trace_file(const std::string& path, const Telemetry& telemetry);

/// Writes the metrics document to `path`. Returns false on I/O failure.
bool write_metrics_file(const std::string& path, const Telemetry& telemetry);

/// Writes the time-series samples to `path`; CSV when the name ends in
/// ".csv", a JSON array otherwise.
bool write_samples_file(const std::string& path, const Telemetry& telemetry);

}  // namespace esp::telemetry
