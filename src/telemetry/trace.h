// Fixed-capacity ring of per-operation trace events.
//
// Every host request the driver issues gets a span; every flash command
// and FTL mechanism op executed on its behalf gets a child span tagged
// with the request id. The ring holds the most recent `capacity` events
// (wraparound evicts the oldest; `dropped()` reports how many), so memory
// stays bounded on arbitrarily long runs.
//
// Two dump formats:
//   * dump_jsonl    -- pure JSONL, one self-contained JSON object/line;
//   * dump_chrome   -- Chrome trace_event JSON (an array of "ph":"X"
//     complete events, one per line) loadable directly in chrome://tracing
//     or https://ui.perfetto.dev. Lanes (tid) group events by layer:
//     host requests, FTL mechanisms, NAND commands.
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "telemetry/sink.h"
#include "util/serialize.h"

namespace esp::telemetry {

struct TraceEvent {
  OpKind kind = OpKind::kCount;
  std::uint32_t request_id = 0;  ///< owning host request (0 = none)
  SimTime start_us = 0.0;
  SimTime dur_us = 0.0;
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
};

/// Trace lane of an op kind: 0 = host, 1 = ftl, 2 = nand.
constexpr std::uint32_t op_lane(OpKind kind) {
  switch (kind) {
    case OpKind::kHostWrite:
    case OpKind::kHostRead:
    case OpKind::kHostFlush:
    case OpKind::kHostTrim:
      return 0;
    case OpKind::kGcCopy:
    case OpKind::kRmw:
    case OpKind::kForwardMigration:
    case OpKind::kRetentionEvict:
    case OpKind::kWearLevel:
      return 1;
    default:
      return 2;
  }
}

class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity = 1 << 16);

  void push(const TraceEvent& event);

  std::size_t capacity() const { return ring_.size(); }
  /// Events currently held (<= capacity).
  std::size_t size() const;
  /// Total events ever pushed.
  std::uint64_t pushed() const { return pushed_; }
  /// Events evicted by wraparound.
  std::uint64_t dropped() const;

  /// i-th retained event, oldest first (0 <= i < size()).
  const TraceEvent& at(std::size_t i) const;

  void clear();

  /// Pure JSONL: one JSON object per line.
  void dump_jsonl(std::ostream& os) const;
  /// Chrome trace_event format (JSON array of complete events).
  void dump_chrome(std::ostream& os) const;

  /// Snapshot support: ring contents + push cursor, so a restored ring
  /// dumps exactly what the saved one would have. Capacity must match.
  void save_state(util::StateWriter& w) const;
  void load_state(util::StateReader& r);

 private:
  std::vector<TraceEvent> ring_;
  std::uint64_t pushed_ = 0;
};

}  // namespace esp::telemetry
