#include "telemetry/sampler.h"

#include <cstdio>

#include "telemetry/json.h"

namespace esp::telemetry {
namespace {

void append_num(std::ostream& os, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  os << buf;
}

}  // namespace

TimeSeriesSampler::TimeSeriesSampler(SimTime interval_us)
    : interval_us_(interval_us) {}

void TimeSeriesSampler::start(SimTime now) { next_due_us_ = now + interval_us_; }

bool TimeSeriesSampler::due(SimTime now) const {
  return enabled() && now >= next_due_us_;
}

void TimeSeriesSampler::push(const Sample& sample, SimTime now) {
  samples_.push_back(sample);
  last_sample_us_ = now;
  // Re-arm relative to the push (not the nominal boundary): windows under
  // bursty simulated time stay >= interval long instead of piling up.
  next_due_us_ = now + interval_us_;
}

std::string TimeSeriesSampler::csv_header() {
  std::string h =
      "sim_time_s,requests,iops,request_waf,overall_waf,gc_invocations,"
      "gc_copy_sectors,erases,prog_full,prog_sub,forward_migrations,"
      "retention_evictions,rmw_ops,region_blocks,region_valid_sectors";
  for (std::size_t k = 0; k < kOpKindCount; ++k) {
    const char* name = op_name(static_cast<OpKind>(k));
    h += ',';
    h += name;
    h += "_p50_us,";
    h += name;
    h += "_p99_us";
  }
  h += ",all_ops_p50_us,all_ops_p99_us,all_ops_p999_us";
  return h;
}

void TimeSeriesSampler::write_csv(std::ostream& os) const {
  os << csv_header() << '\n';
  for (const Sample& s : samples_) {
    append_num(os, s.sim_time_s);
    os << ',' << s.requests << ',';
    append_num(os, s.iops);
    os << ',';
    append_num(os, s.request_waf);
    os << ',';
    append_num(os, s.overall_waf);
    os << ',' << s.gc_invocations << ',' << s.gc_copy_sectors << ','
       << s.erases << ',' << s.prog_full << ',' << s.prog_sub << ','
       << s.forward_migrations << ',' << s.retention_evictions << ','
       << s.rmw_ops << ',';
    append_num(os, s.region_blocks);
    os << ',';
    append_num(os, s.region_valid_sectors);
    for (std::size_t k = 0; k < kOpKindCount; ++k) {
      os << ',';
      append_num(os, s.op_p50_us[k]);
      os << ',';
      append_num(os, s.op_p99_us[k]);
    }
    os << ',';
    append_num(os, s.all_ops_p50_us);
    os << ',';
    append_num(os, s.all_ops_p99_us);
    os << ',';
    append_num(os, s.all_ops_p999_us);
    os << '\n';
  }
}

void TimeSeriesSampler::save_state(util::StateWriter& w) const {
  w.tag("SMPL");
  w.f64(interval_us_);
  w.f64(next_due_us_);
  w.f64(last_sample_us_);
  w.pod_vec(samples_);
}

void TimeSeriesSampler::load_state(util::StateReader& r) {
  r.tag("SMPL");
  if (r.f64() != interval_us_)
    throw std::runtime_error(
        "TimeSeriesSampler::load_state: interval mismatch");
  next_due_us_ = r.f64();
  last_sample_us_ = r.f64();
  r.pod_vec(samples_);
}

void TimeSeriesSampler::write_json(std::ostream& os) const {
  JsonWriter w(os);
  w.begin_array();
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    const Sample& s = samples_[i];
    if (i) w.newline();
    w.begin_object();
    w.kv("sim_time_s", s.sim_time_s);
    w.kv("requests", s.requests);
    w.kv("iops", s.iops);
    w.kv("request_waf", s.request_waf);
    w.kv("overall_waf", s.overall_waf);
    w.kv("gc_invocations", s.gc_invocations);
    w.kv("gc_copy_sectors", s.gc_copy_sectors);
    w.kv("erases", s.erases);
    w.kv("prog_full", s.prog_full);
    w.kv("prog_sub", s.prog_sub);
    w.kv("forward_migrations", s.forward_migrations);
    w.kv("retention_evictions", s.retention_evictions);
    w.kv("rmw_ops", s.rmw_ops);
    w.kv("region_blocks", s.region_blocks);
    w.kv("region_valid_sectors", s.region_valid_sectors);
    w.key("op_latency_us");
    w.begin_object();
    for (std::size_t k = 0; k < kOpKindCount; ++k) {
      if (s.op_p50_us[k] <= 0.0 && s.op_p99_us[k] <= 0.0) continue;
      w.key(op_name(static_cast<OpKind>(k)));
      w.begin_object();
      w.kv("p50", s.op_p50_us[k]);
      w.kv("p99", s.op_p99_us[k]);
      w.end_object();
    }
    w.end_object();
    w.kv("all_ops_p50_us", s.all_ops_p50_us);
    w.kv("all_ops_p99_us", s.all_ops_p99_us);
    w.kv("all_ops_p999_us", s.all_ops_p999_us);
    w.end_object();
  }
  w.end_array();
  w.newline();
}

}  // namespace esp::telemetry
