// Device-health observability: periodic per-block snapshots plus a
// SMART-style device attribute line, streamed as schema-versioned JSONL.
//
// The HealthMonitor is fed from two sides:
//
//   * an event feed (Telemetry facade, set_health): every op event flows
//     through on_op(), from which the monitor maintains per-block GC-victim
//     counts and windowed per-cause program/erase counters -- the same
//     cause taxonomy the causal-attribution journal uses, so the smart
//     line's WAF decomposition is consistent with espreport's;
//   * an epoch snapshot (driver): on each sim-time epoch boundary the
//     driver fills the monitor's row buffer from the NAND device
//     (P/E cycles, programmed pages, first-program time) and the FTL
//     (pool ownership, ESP level, valid counts), then commits the epoch.
//
// Stream layout (one JSON object per line, all lines carry `"t"`):
//   hdr    schema version, kind:"health", FTL, geometry, seed,
//          epoch interval, rated P/E endurance
//   epoch  epoch boundary marker: index + simulated time
//   b      one changed block row (DELTA-ENCODED: a block is re-emitted
//          only when its tuple changed since its last emission; blocks
//          never emitted are in their pristine default state)
//   smart  device-level attribute table for the epoch: media wear %,
//          spare blocks, wear min/max/mean/stddev/CoV/Gini, windowed
//          per-cause WAF decomposition, retention-expiry rate, projected
//          P/E-exhaustion horizon
//   end    trailer: epoch and line counts
//
// Timestamps print with "%.10g" (same round-trip contract as the
// journal). Epoch 0 is snapshotted at attach time, so the stream carries
// the absolute post-precondition baseline every later delta builds on.
#pragma once

#include <cstdint>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "telemetry/causes.h"
#include "telemetry/sink.h"
#include "util/serialize.h"

namespace esp::telemetry {

/// Pool ownership of a block in a health row.
enum class HealthPool : std::uint8_t {
  kFree = 0,  ///< not owned by any pool (allocator free list)
  kFull,      ///< full-page pool ("full")
  kSub,       ///< ESP subpage pool ("sub")
  kFine,      ///< fine-grained sector pool ("fine")
};

constexpr const char* health_pool_name(HealthPool pool) {
  switch (pool) {
    case HealthPool::kFree: return "free";
    case HealthPool::kFull: return "full";
    case HealthPool::kSub: return "sub";
    case HealthPool::kFine: return "fine";
  }
  return "unknown";
}

/// One block's health tuple. The device fills the physical fields, the
/// owning FTL pool fills ownership/validity, the monitor itself fills
/// gc_victims from its event feed. Delta encoding compares whole tuples.
struct BlockHealth {
  std::uint32_t pe = 0;               ///< P/E cycles
  std::uint32_t programmed_pages = 0; ///< pages with >=1 program this cycle
  std::uint32_t valid = 0;            ///< valid sectors/pages (pool units)
  std::uint32_t valid_cap = 0;        ///< capacity in the same units
  std::uint32_t gc_victims = 0;       ///< times erased under a GC cause
  SimTime first_program_us = -1.0;    ///< first program since erase (<0: none)
  std::uint8_t pool = 0;              ///< HealthPool
  std::uint8_t level = 0;             ///< ESP level (subpage pool, else 0)

  bool operator==(const BlockHealth&) const = default;
};

/// Run-identifying fields written into the health stream's hdr line.
struct HealthHeader {
  std::string ftl;
  std::uint32_t chips = 0;
  std::uint32_t blocks_per_chip = 0;
  std::uint32_t pages_per_block = 0;
  std::uint32_t subpages_per_page = 0;
  std::uint64_t seed = 0;
  /// Epoch period in simulated microseconds; 0 = endpoint epochs only
  /// (attach + end of each run).
  SimTime interval_us = 0.0;
  /// Rated P/E endurance used for media-wear % and the exhaustion horizon.
  std::uint32_t rated_pe = 3000;
  /// Shard identity of a sharded run's per-shard stream (core/shard.h):
  /// emitted in the hdr line only when shards > 1, so unsharded health
  /// streams keep their legacy bytes.
  std::uint32_t shard = 0;
  std::uint32_t shards = 1;
};

class HealthMonitor {
 public:
  static constexpr int kSchemaVersion = 1;

  /// Writes the hdr line immediately. The stream must outlive the monitor.
  /// With `resume` set, no hdr line is written (appending to an existing
  /// stream after a snapshot restore; cursors arrive via load_state).
  HealthMonitor(std::ostream& os, const HealthHeader& header,
                bool resume = false);

  // --- event feed (Telemetry facade) --------------------------------
  /// Folds one op event into the per-block and windowed counters.
  /// Defined inline: this runs once per flash op for the lifetime of an
  /// always-on stream, and every branch is a bare counter increment.
  void on_op(const OpEvent& event, Cause cause) {
    const auto c = static_cast<std::size_t>(cause);
    switch (event.kind) {
      case OpKind::kProgFull:
        if (c < kCauseCount) ++win_cause_prog_full_[c];
        return;
      case OpKind::kProgSub:
        if (c < kCauseCount) ++win_cause_prog_sub_[c];
        return;
      case OpKind::kErase: {
        if (c < kCauseCount) ++win_cause_erases_[c];
        // Per-block GC-victim accounting: an erase attributed to a GC pass
        // means this block was selected as a victim.
        if (cause == Cause::kGcCopy && event.chip != kNoChip) {
          const std::size_t idx =
              static_cast<std::size_t>(event.chip) * header_.blocks_per_chip +
              event.block;
          if (idx < gc_victims_.size()) ++gc_victims_[idx];
        }
        return;
      }
      case OpKind::kHostWrite:
        // arg0 = sector count (driver's end_request schema).
        win_host_sectors_ += event.arg0;
        return;
      case OpKind::kRetentionEvict:
        // arg0 = sectors evicted by the retention scan.
        win_retention_evict_sectors_ += event.arg0;
        return;
      default:
        return;
    }
  }

  // --- epoch cadence (driver) ---------------------------------------
  /// Anchors the epoch clock at `now` (called once at attach).
  void start(SimTime now);
  /// True when the current epoch has elapsed (always false when the
  /// interval is 0 -- endpoint epochs are triggered explicitly).
  bool due(SimTime now) const {
    return header_.interval_us > 0.0 && now >= next_due_us_;
  }
  SimTime last_epoch_us() const { return last_epoch_us_; }

  // --- epoch snapshot (driver) --------------------------------------
  /// Returns the cleared row buffer (one row per physical block, indexed
  /// chip * blocks_per_chip + block) for the device and FTL to fill.
  std::span<BlockHealth> begin_epoch();
  /// Emits the epoch: marker line, changed-block delta rows, smart line.
  /// `spare_blocks` is the allocator's current free-block count.
  void commit_epoch(SimTime now, std::uint64_t spare_blocks);

  /// Writes the end trailer (idempotent; later epochs are dropped).
  void finish();

  std::uint64_t epochs_written() const { return epochs_; }
  std::uint64_t lines_written() const { return lines_; }

  /// Snapshot support: epoch cadence cursors, line counters, the
  /// delta-encoding reference tuples, per-block GC-victim counts and the
  /// open window's per-cause counters.
  void save_state(util::StateWriter& w) const;
  void load_state(util::StateReader& r);

 private:
  void write_line(const char* buf);
  void emit_smart(SimTime now, std::uint64_t spare_blocks,
                  std::uint32_t pe_min, std::uint32_t pe_max, double sum);

  /// Appends one delta row for block `i` to out_buf_ (to_chars fast path:
  /// a prod-geometry epoch can carry thousands of rows, and snprintf's
  /// format-string parse would dominate the monitor's cost).
  void append_block_row(std::size_t i, const BlockHealth& r);

  std::ostream& os_;
  HealthHeader header_;
  std::size_t total_blocks_;
  bool finished_ = false;
  SimTime next_due_us_ = 0.0;
  SimTime last_epoch_us_ = 0.0;
  std::uint64_t epochs_ = 0;
  std::uint64_t lines_ = 0;

  /// Snapshot double-buffer: rows_ is filled per epoch, emitted_ holds the
  /// last-emitted tuple per block (delta-encoding reference).
  std::vector<BlockHealth> rows_;
  std::vector<BlockHealth> emitted_;
  std::vector<std::uint32_t> gc_victims_;  ///< erases under a GC cause
  std::vector<std::uint32_t> pe_scratch_;  ///< dense P/E copy of rows_
  std::vector<std::uint64_t> counts_;      ///< Gini counting-sort buckets
  std::string out_buf_;  ///< per-epoch line accumulator, one write per epoch

  // Windowed event-feed counters, reset at each commit.
  std::uint64_t win_cause_prog_full_[kCauseCount] = {};
  std::uint64_t win_cause_prog_sub_[kCauseCount] = {};
  std::uint64_t win_cause_erases_[kCauseCount] = {};
  std::uint64_t win_host_sectors_ = 0;
  std::uint64_t win_retention_evict_sectors_ = 0;
};

}  // namespace esp::telemetry
