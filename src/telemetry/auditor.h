// Online invariant auditor: a debug-mode sink validating FTL contracts as
// telemetry events arrive, failing fast with the offending cause chain.
//
// Invariants checked per physical block, per erase cycle:
//   I1  each subpage slot is programmed at most once (ESP's core rule);
//   I2  subpage programs land on the frontier slot only -- for a page
//       with k programmed slots the next program must target slot k;
//   I3  for blocks owned by the subpage pool, the programmed slot equals
//       the block's current ESP level (frontier agreement with the pool);
//   I4  full-page programs append sequentially (page k, then k+1, ...);
//   I5  full-page and subpage programs never mix within one erase cycle;
//   I6  a block is erased only when fully invalid or relocated: the
//       erased lifecycle event must report valid == 0;
//   I7  programs only target blocks a pool currently owns (allocation
//       bracketing), and valid counts never exceed programmed capacity.
//
// Synchronization: telemetry usually attaches after preconditioning, so
// the auditor starts with no knowledge of block state. A block becomes
// *synced* (strictly checked) at its first observed erase or allocation --
// the shared allocator only hands out erased blocks, so allocation implies
// a clean slate. Until synced, only monotonicity violations (a slot or
// page re-programmed without an intervening erase) are detectable and
// reported.
//
// Failure mode: fail_fast (default) throws std::logic_error whose message
// carries the invariant, the physical address and the active cause chain;
// otherwise violations accumulate (bounded) for inspection.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "telemetry/causes.h"
#include "telemetry/sink.h"
#include "util/serialize.h"

namespace esp::telemetry {

struct AuditorConfig {
  std::uint32_t chips = 0;
  std::uint32_t blocks_per_chip = 0;
  std::uint32_t pages_per_block = 0;
  std::uint32_t subpages_per_page = 0;
  bool fail_fast = true;
  /// Retained violation messages when not failing fast.
  std::size_t max_violations = 64;
};

class Auditor {
 public:
  explicit Auditor(const AuditorConfig& config);

  /// Feed one op event (flash-lane kinds are checked, others ignored).
  void on_op(const OpEvent& event, std::span<const CauseFrame> chain);
  /// Feed one block lifecycle transition.
  void on_block(const BlockLifecycleEvent& event,
                std::span<const CauseFrame> chain);

  std::uint64_t ops_checked() const { return ops_checked_; }
  std::uint64_t violation_count() const { return violation_count_; }
  const std::vector<std::string>& violations() const { return violations_; }

  /// Snapshot support: the per-block erase-cycle models (sync state,
  /// frontiers, per-page slot expectations) and the pool-name table, so a
  /// restored auditor keeps checking with full strictness instead of
  /// re-syncing block by block.
  void save_state(util::StateWriter& w) const;
  void load_state(util::StateReader& r);

 private:
  // Per-block model of the current erase cycle.
  struct BlockState {
    bool synced = false;     ///< state known exactly since an erase/alloc
    bool allocated = false;  ///< currently owned by a pool (synced only)
    std::uint8_t mode = 0;   ///< 0 none, 1 sub, 2 full (this erase cycle)
    std::uint8_t pool = 0;   ///< owning pool id + 1 (0 = unknown)
    std::uint32_t level = 0;      ///< ESP level from lifecycle events
    std::uint32_t next_page = 0;  ///< full-page append frontier
    std::uint32_t pages_programmed = 0;  ///< distinct pages this cycle
    /// Per-page next expected slot (sub mode); lazily sized.
    std::vector<std::uint8_t> next_slot;
  };

  BlockState& state(std::uint32_t chip, std::uint32_t block);
  std::uint8_t pool_id(const char* pool);
  void reset_cycle(BlockState& bs);
  void fail(const std::string& what, std::uint32_t chip, std::uint32_t block,
            std::span<const CauseFrame> chain);

  void check_prog_sub(const OpEvent& event, std::span<const CauseFrame> chain);
  void check_prog_full(const OpEvent& event,
                       std::span<const CauseFrame> chain);
  void check_erase(const OpEvent& event, std::span<const CauseFrame> chain);

  AuditorConfig cfg_;
  std::vector<BlockState> blocks_;
  std::vector<std::string> pool_names_;
  std::uint8_t sub_pool_id_ = 0;  ///< id of the "sub" pool once seen
  std::uint64_t ops_checked_ = 0;
  std::uint64_t violation_count_ = 0;
  std::vector<std::string> violations_;
};

/// Human-readable cause chain, outermost first: "host>gc_copy(12)".
/// An empty chain renders as "host".
std::string format_cause_chain(std::span<const CauseFrame> chain);

}  // namespace esp::telemetry
