#include "telemetry/export.h"

#include <fstream>

#include "telemetry/json.h"
#include "telemetry/telemetry.h"

namespace esp::telemetry {
namespace {

void write_histogram_summary(JsonWriter& w, const util::Histogram& h) {
  w.begin_object();
  w.kv("count", h.total());
  w.kv("p50", h.percentile(0.50));
  w.kv("p90", h.percentile(0.90));
  w.kv("p99", h.percentile(0.99));
  w.kv("p999", h.percentile(0.999));
  w.kv("lo", h.lo());
  w.kv("hi", h.hi());
  w.kv("underflow", h.underflow());
  w.kv("overflow", h.overflow());
  w.end_object();
}

}  // namespace

void write_metrics_json(std::ostream& os, const Telemetry& telemetry) {
  JsonWriter w(os);
  const MetricsRegistry& reg = telemetry.registry();
  w.begin_object();
  w.newline();

  w.key("counters");
  w.begin_object();
  reg.visit_counters([&w](const std::string& name, std::uint64_t v) {
    w.kv(name, v);
  });
  w.end_object();
  w.newline();

  w.key("gauges");
  w.begin_object();
  reg.visit_gauges([&w](const std::string& name, double v) { w.kv(name, v); });
  w.end_object();
  w.newline();

  w.key("histograms");
  w.begin_object();
  reg.visit_histograms(
      [&w](const std::string& name, const util::Histogram& h) {
        w.key(name);
        write_histogram_summary(w, h);
      });
  w.end_object();
  w.newline();

  w.key("trace");
  w.begin_object();
  w.kv("events_recorded", telemetry.trace().pushed());
  w.kv("events_retained", static_cast<std::uint64_t>(telemetry.trace().size()));
  w.kv("events_dropped", telemetry.trace().dropped());
  w.end_object();
  w.newline();

  // Sampler rows go out raw: write_json emits the whole array, which slots
  // in as the pending "samples" value before the closing brace.
  w.key("samples");
  telemetry.sampler().write_json(os);
  w.end_object();
  os << "\n";
}

bool write_metrics_file(const std::string& path, const Telemetry& telemetry) {
  std::ofstream os(path);
  if (!os) return false;
  write_metrics_json(os, telemetry);
  return static_cast<bool>(os);
}

bool write_trace_file(const std::string& path, const Telemetry& telemetry) {
  std::ofstream os(path);
  if (!os) return false;
  const bool chrome =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  if (chrome)
    telemetry.trace().dump_chrome(os);
  else
    telemetry.trace().dump_jsonl(os);
  return static_cast<bool>(os);
}

bool write_samples_file(const std::string& path, const Telemetry& telemetry) {
  std::ofstream os(path);
  if (!os) return false;
  const bool csv =
      path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  if (csv)
    telemetry.sampler().write_csv(os);
  else
    telemetry.sampler().write_json(os);
  return static_cast<bool>(os);
}

}  // namespace esp::telemetry
