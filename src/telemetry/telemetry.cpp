#include "telemetry/telemetry.h"

#include <string>

#include "telemetry/auditor.h"
#include "telemetry/forensics.h"
#include "telemetry/health.h"
#include "telemetry/journal.h"

namespace esp::telemetry {
namespace {

// Per-op latency histogram shape: 25 us resolution up to 100 ms covers
// everything from cache-hit reads (~tens of us) through multi-page GC
// copies; longer outliers clamp into the last bucket and show up in
// Histogram::overflow().
constexpr double kLatLoUs = 0.0;
constexpr double kLatHiUs = 100'000.0;
constexpr std::size_t kLatBuckets = 4000;

}  // namespace

Telemetry::Telemetry(const TelemetryConfig& config)
    : trace_(config.trace_capacity),
      sampler_(config.sample_interval_us),
      op_detail_(config.op_detail) {
  window_.reserve(kOpKindCount);
  for (std::size_t k = 0; k < kOpKindCount; ++k) {
    const std::string name =
        std::string("op/") + op_name(static_cast<OpKind>(k)) + "/latency_us";
    cumulative_[k] = &registry_.histogram(name, kLatLoUs, kLatHiUs, kLatBuckets);
    window_.emplace_back(kLatLoUs, kLatHiUs, kLatBuckets);
  }
  // Queue-wait (response - service) distributions for the host lane; the
  // flash/FTL lanes have no arrival clock, so only kinds 0..3 get one.
  for (std::size_t k = 0; k < 4; ++k) {
    const std::string name =
        std::string("op/") + op_name(static_cast<OpKind>(k)) + "/wait_us";
    wait_[k] = &registry_.histogram(name, kLatLoUs, kLatHiUs, kLatBuckets);
  }
  for (std::size_t c = 0; c < kCauseCount; ++c) {
    const std::string prefix =
        std::string("cause/") + cause_name(static_cast<Cause>(c));
    registry_.bind_counter(prefix + "/prog_full", &cause_progs_full_[c]);
    registry_.bind_counter(prefix + "/prog_sub", &cause_progs_sub_[c]);
    registry_.bind_counter(prefix + "/erase", &cause_erases_[c]);
    cause_latency_[c] = &registry_.histogram(prefix + "/latency_us", kLatLoUs,
                                             kLatHiUs, kLatBuckets);
  }
  recompute_op_mask();
}

void Telemetry::recompute_op_mask() {
  // With per-op detail on (trace + latency histograms) or a journal /
  // auditor attached, every kind matters. Otherwise the facade needs only
  // the kinds that feed its per-cause counters (programs, erases — the
  // cause_count() contract holds regardless of consumers) plus the kinds
  // the health monitor folds into its window (host writes, retention
  // evictions). Reads, RMW and copy records can be skipped at the source.
  std::uint32_t mask;
  if (op_detail_ || journal_ != nullptr || auditor_ != nullptr) {
    mask = ~0u;
  } else {
    const auto bit = [](OpKind k) {
      return 1u << static_cast<unsigned>(k);
    };
    mask = bit(OpKind::kProgFull) | bit(OpKind::kProgSub) |
           bit(OpKind::kErase);
    if (health_ != nullptr)
      mask |= bit(OpKind::kHostWrite) | bit(OpKind::kRetentionEvict);
    // The forensics collector sweeps every flash-lane interval, so it is
    // the one lean-facade consumer that also needs device reads.
    if (forensics_ != nullptr) mask |= bit(OpKind::kRead);
  }
  set_op_mask(mask);
}

void Telemetry::record_op(const OpEvent& event) {
  const auto k = static_cast<std::size_t>(event.kind);
  if (k >= kOpKindCount) return;
  if (op_detail_) {
    const double dur = event.end - event.start;
    cumulative_[k]->add(dur);
    window_[k].add(dur);
    trace_.push(TraceEvent{event.kind, current_request_, event.start, dur,
                           event.arg0, event.arg1});
  }

  // Causal attribution: every flash program/erase lands in exactly one
  // per-cause bucket (the innermost open scope; host when none).
  switch (event.kind) {
    case OpKind::kProgFull:
    case OpKind::kProgSub:
    case OpKind::kErase: {
      const auto c = static_cast<std::size_t>(current_cause());
      if (event.kind == OpKind::kProgFull)
        ++cause_progs_full_[c];
      else if (event.kind == OpKind::kProgSub)
        ++cause_progs_sub_[c];
      else
        ++cause_erases_[c];
      if (op_detail_) cause_latency_[c]->add(event.end - event.start);
      break;
    }
    default:
      break;
  }

  if (journal_)
    journal_->on_op(event, current_cause(), cause_stack_, current_request_);
  if (auditor_) auditor_->on_op(event, cause_stack_);
  if (health_) health_->on_op(event, current_cause());
  if (forensics_ && current_request_ != 0)
    forensics_->on_op(event, current_cause(), cause_stack_);
}

void Telemetry::push_cause(Cause cause, std::uint64_t detail, SimTime at) {
  cause_stack_.push_back(CauseFrame{cause, detail, at});
  if (journal_) journal_->on_scope('B', cause_stack_.back());
}

void Telemetry::pop_cause() {
  if (cause_stack_.empty()) return;
  const CauseFrame top = cause_stack_.back();
  cause_stack_.pop_back();
  if (journal_) journal_->on_scope('E', top);
}

void Telemetry::record_block(const BlockLifecycleEvent& event) {
  if (journal_) journal_->on_block(event);
  if (auditor_) auditor_->on_block(event, cause_stack_);
}

std::uint64_t Telemetry::cause_count(Cause cause, OpKind kind) const {
  const auto c = static_cast<std::size_t>(cause);
  if (c >= kCauseCount) return 0;
  switch (kind) {
    case OpKind::kProgFull: return cause_progs_full_[c];
    case OpKind::kProgSub: return cause_progs_sub_[c];
    case OpKind::kErase: return cause_erases_[c];
    default: return 0;
  }
}

std::uint32_t Telemetry::begin_request(SimTime issue, SimTime arrival,
                                       std::uint16_t tenant) {
  current_request_ = next_request_id_++;
  current_arrival_ = arrival < 0.0 ? issue : arrival;
  if (forensics_)
    forensics_->begin_request(current_request_, current_arrival_, issue,
                              tenant);
  return current_request_;
}

void Telemetry::end_request(OpKind kind, SimTime issue, SimTime done,
                            std::uint64_t arg0, std::uint64_t arg1) {
  // Forensics closes BEFORE the host-lane record so the exemplar sweep
  // never sees the request's own span as a flash segment.
  if (forensics_) forensics_->end_request(kind, done);
  if (op_detail_ && static_cast<std::size_t>(kind) < 4)
    wait_[static_cast<std::size_t>(kind)]->add(issue - current_arrival_);
  if (wants_op(kind)) record_op(OpEvent{kind, issue, done, arg0, arg1});
  current_request_ = 0;
}

void Telemetry::set_forensics(ForensicsCollector* forensics) {
  forensics_ = forensics;
  if (forensics_) forensics_->bind_registry(&registry_);
  recompute_op_mask();
}

void Telemetry::save_state(util::StateWriter& w) const {
  if (!cause_stack_.empty())
    throw std::runtime_error("Telemetry::save_state: open cause scope");
  if (current_request_ != 0)
    throw std::runtime_error("Telemetry::save_state: open host request");
  w.tag("TELM");
  w.b(op_detail_);
  registry_.save_state(w);
  trace_.save_state(w);
  sampler_.save_state(w);
  w.u32(next_request_id_);
  w.f64(current_arrival_);
  for (const util::Histogram& h : window_) h.save_state(w);
  w.raw(cause_progs_full_, sizeof cause_progs_full_);
  w.raw(cause_progs_sub_, sizeof cause_progs_sub_);
  w.raw(cause_erases_, sizeof cause_erases_);
}

void Telemetry::load_state(util::StateReader& r) {
  r.tag("TELM");
  if (r.b() != op_detail_)
    throw std::runtime_error("Telemetry::load_state: op_detail mismatch");
  registry_.load_state(r);
  trace_.load_state(r);
  sampler_.load_state(r);
  next_request_id_ = r.u32();
  current_arrival_ = r.f64();
  for (util::Histogram& h : window_) h.load_state(r);
  r.raw(cause_progs_full_, sizeof cause_progs_full_);
  r.raw(cause_progs_sub_, sizeof cause_progs_sub_);
  r.raw(cause_erases_, sizeof cause_erases_);
  current_request_ = 0;
  cause_stack_.clear();
}

void Telemetry::harvest_window(Sample& sample) {
  util::Histogram all(kLatLoUs, kLatHiUs, kLatBuckets);
  for (std::size_t k = 0; k < kOpKindCount; ++k) {
    util::Histogram& h = window_[k];
    if (h.total() > 0) {
      sample.op_p50_us[k] = h.percentile(0.50);
      sample.op_p99_us[k] = h.percentile(0.99);
      all.merge(h);
    }
    h.reset();
  }
  if (all.total() > 0) {
    sample.all_ops_p50_us = all.percentile(0.50);
    sample.all_ops_p99_us = all.percentile(0.99);
    sample.all_ops_p999_us = all.percentile(0.999);
  }
}

}  // namespace esp::telemetry
