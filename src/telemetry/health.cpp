#include "telemetry/health.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace esp::telemetry {
namespace {

// The smart line carries ~25 fields including a per-cause WAF object;
// 1024 leaves comfortable headroom (the journal's op lines fit in 768).
constexpr std::size_t kLineCap = 1024;

// Same round-trip contract as the journal: "%.10g" re-parses exactly for
// every time value this simulator produces. to_chars(general, 10) is
// specified to print exactly what printf "%.10g" prints (C locale) and is
// ~5x faster -- block rows carry an fp timestamp each, and a prod-geometry
// baseline epoch emits tens of thousands of them.
void fmt_time(char* out, std::size_t cap, SimTime t) {
  const auto res =
      std::to_chars(out, out + cap - 1, t, std::chars_format::general, 10);
  *res.ptr = '\0';
}

void append_u(std::string& s, std::uint64_t v) {
  char tmp[20];
  const auto res = std::to_chars(tmp, tmp + sizeof tmp, v);
  s.append(tmp, res.ptr);
}

}  // namespace

HealthMonitor::HealthMonitor(std::ostream& os, const HealthHeader& header,
                             bool resume)
    : os_(os),
      header_(header),
      total_blocks_(static_cast<std::size_t>(header.chips) *
                    header.blocks_per_chip),
      rows_(total_blocks_),
      emitted_(total_blocks_),
      gc_victims_(total_blocks_, 0),
      pe_scratch_(total_blocks_, 0) {
  if (resume) return;  // appending after a restore; hdr already on disk
  char interval_s[32];
  fmt_time(interval_s, sizeof interval_s, header_.interval_us);
  char shard_tag[64] = "";
  if (header_.shards > 1)
    std::snprintf(shard_tag, sizeof shard_tag, ",\"shard\":%u,\"shards\":%u",
                  header_.shard, header_.shards);
  char buf[kLineCap];
  std::snprintf(buf, sizeof buf,
                "{\"v\":%d,\"t\":\"hdr\",\"kind\":\"health\",\"ftl\":\"%s\","
                "\"chips\":%u,\"blocks_per_chip\":%u,\"pages_per_block\":%u,"
                "\"subs\":%u,\"seed\":%llu,\"interval_us\":%s,"
                "\"rated_pe\":%u%s}",
                kSchemaVersion, header_.ftl.c_str(), header_.chips,
                header_.blocks_per_chip, header_.pages_per_block,
                header_.subpages_per_page,
                static_cast<unsigned long long>(header_.seed), interval_s,
                header_.rated_pe, shard_tag);
  write_line(buf);
}

void HealthMonitor::write_line(const char* buf) {
  os_ << buf << '\n';
  ++lines_;
}

void HealthMonitor::start(SimTime now) {
  last_epoch_us_ = now;
  next_due_us_ = now + header_.interval_us;
}

std::span<BlockHealth> HealthMonitor::begin_epoch() {
  std::fill(rows_.begin(), rows_.end(), BlockHealth{});
  return rows_;
}

void HealthMonitor::append_block_row(std::size_t i, const BlockHealth& r) {
  out_buf_.append("{\"t\":\"b\",\"i\":");
  append_u(out_buf_, i);
  out_buf_.append(",\"pe\":");
  append_u(out_buf_, r.pe);
  out_buf_.append(",\"pool\":\"");
  out_buf_.append(health_pool_name(static_cast<HealthPool>(r.pool)));
  out_buf_.append("\",\"lvl\":");
  append_u(out_buf_, r.level);
  out_buf_.append(",\"pp\":");
  append_u(out_buf_, r.programmed_pages);
  out_buf_.append(",\"valid\":");
  append_u(out_buf_, r.valid);
  out_buf_.append(",\"cap\":");
  append_u(out_buf_, r.valid_cap);
  out_buf_.append(",\"gcv\":");
  append_u(out_buf_, r.gc_victims);
  if (r.first_program_us >= 0.0) {
    char fp_s[32];
    fmt_time(fp_s, sizeof fp_s, r.first_program_us);
    out_buf_.append(",\"fp\":");
    out_buf_.append(fp_s);
  }
  out_buf_.append("}\n");
  ++lines_;
}

void HealthMonitor::commit_epoch(SimTime now, std::uint64_t spare_blocks) {
  if (finished_) return;

  char at_s[32];
  fmt_time(at_s, sizeof at_s, now);
  char buf[kLineCap];
  std::snprintf(buf, sizeof buf, "{\"t\":\"epoch\",\"i\":%llu,\"us\":%s}",
                static_cast<unsigned long long>(epochs_), at_s);
  out_buf_.clear();
  out_buf_.append(buf);
  out_buf_.push_back('\n');
  ++lines_;

  // Single pass: delta-emit changed rows, and gather the P/E distribution
  // into the dense scratch array (min/max/sum here, variance and Gini over
  // the scratch in emit_smart) so the wear statistics never re-walk the
  // 40-byte row structs.
  std::uint32_t pe_min = 0xFFFFFFFFu, pe_max = 0;
  double pe_sum = 0.0;
  for (std::size_t i = 0; i < total_blocks_; ++i) {
    rows_[i].gc_victims = gc_victims_[i];
    const std::uint32_t pe = rows_[i].pe;
    pe_scratch_[i] = pe;
    pe_min = std::min(pe_min, pe);
    pe_max = std::max(pe_max, pe);
    pe_sum += static_cast<double>(pe);
    if (rows_[i] == emitted_[i]) continue;
    append_block_row(i, rows_[i]);
    emitted_[i] = rows_[i];
  }
  emit_smart(now, spare_blocks, pe_min, pe_max, pe_sum);
  os_.write(out_buf_.data(),
            static_cast<std::streamsize>(out_buf_.size()));

  ++epochs_;
  last_epoch_us_ = now;
  if (header_.interval_us > 0.0) {
    while (next_due_us_ <= now) next_due_us_ += header_.interval_us;
  }
  std::fill(std::begin(win_cause_prog_full_), std::end(win_cause_prog_full_),
            0);
  std::fill(std::begin(win_cause_prog_sub_), std::end(win_cause_prog_sub_),
            0);
  std::fill(std::begin(win_cause_erases_), std::end(win_cause_erases_), 0);
  win_host_sectors_ = 0;
  win_retention_evict_sectors_ = 0;
}

void HealthMonitor::emit_smart(SimTime now, std::uint64_t spare_blocks,
                               std::uint32_t pe_min, std::uint32_t pe_max,
                               double sum) {
  // Wear distribution over EVERY physical block (pristine ones included:
  // wear skew against never-touched spares is exactly what CoV/Gini
  // should expose). min/max/sum arrive from commit_epoch's gather pass;
  // everything below runs over the dense pe_scratch_ copy.
  const double n = static_cast<double>(total_blocks_);
  const double mean = total_blocks_ ? sum / n : 0.0;
  double var = 0.0;
  for (const std::uint32_t pe : pe_scratch_) {
    const double d = static_cast<double>(pe) - mean;
    var += d * d;
  }
  const double stddev = total_blocks_ ? std::sqrt(var / n) : 0.0;
  const double cov = mean > 0.0 ? stddev / mean : 0.0;

  // Gini over sorted P/E counts: G = (2 * sum(i * x_i) / (n * sum(x)))
  // - (n + 1) / n with 1-based ranks over ascending x. 0 = perfectly even.
  // P/E counts are small integers, so the sort is a counting sort: blocks
  // at value v occupy ranks rank+1 .. rank+c and contribute
  // v * (c * (2*rank + c + 1) / 2) to the rank-weighted sum (exact in
  // uint64: c and rank are block counts, v is bounded by pe_max).
  double gini = 0.0;
  if (sum > 0.0 && total_blocks_ > 0) {
    double weighted = 0.0;
    if (pe_max < (1u << 22)) {
      counts_.assign(static_cast<std::size_t>(pe_max) + 1, 0);
      for (const std::uint32_t pe : pe_scratch_) ++counts_[pe];
      std::uint64_t rank = 0;
      for (std::size_t v = 0; v <= pe_max; ++v) {
        const std::uint64_t c = counts_[v];
        if (!c) continue;
        weighted += static_cast<double>(v) *
                    static_cast<double>(c * (2 * rank + c + 1) / 2);
        rank += c;
      }
    } else {
      // Degenerate wear values (e.g. a huge synthetic rated_pe): fall back
      // to a comparison sort rather than allocating pe_max counters.
      std::vector<std::uint32_t> sorted(pe_scratch_);
      std::sort(sorted.begin(), sorted.end());
      for (std::size_t i = 0; i < sorted.size(); ++i)
        weighted +=
            static_cast<double>(i + 1) * static_cast<double>(sorted[i]);
    }
    gini = (2.0 * weighted) / (n * sum) - (n + 1.0) / n;
  }

  // Windowed per-cause WAF decomposition in sector units (a full-page
  // program carries subpages_per_page sectors, a subpage program one).
  const std::uint64_t subs = header_.subpages_per_page;
  char waf[400];
  {
    std::size_t off = 0;
    off += std::snprintf(waf + off, sizeof waf - off, "{");
    for (std::size_t c = 0; c < kCauseCount; ++c) {
      const std::uint64_t sectors =
          win_cause_prog_full_[c] * subs + win_cause_prog_sub_[c];
      off += std::snprintf(waf + off, sizeof waf - off, "%s\"%s\":%llu",
                           c == 0 ? "" : ",",
                           cause_name(static_cast<Cause>(c)),
                           static_cast<unsigned long long>(sectors));
      if (off >= sizeof waf) break;
    }
    if (off < sizeof waf) std::snprintf(waf + off, sizeof waf - off, "}");
  }
  std::uint64_t win_flash_sectors = 0;
  std::uint64_t win_erases = 0;
  for (std::size_t c = 0; c < kCauseCount; ++c) {
    win_flash_sectors += win_cause_prog_full_[c] * subs +
                         win_cause_prog_sub_[c];
    win_erases += win_cause_erases_[c];
  }
  const double overall_waf =
      win_host_sectors_ > 0
          ? static_cast<double>(win_flash_sectors) /
                static_cast<double>(win_host_sectors_)
          : 1.0;

  const double window_s = (now - last_epoch_us_) / 1e6;
  const double retention_rate =
      window_s > 0.0
          ? static_cast<double>(win_retention_evict_sectors_) / window_s
          : 0.0;

  // Projected P/E-exhaustion horizon: remaining rated erase budget across
  // the device divided by the window's erase rate. -1 = no erases this
  // window (no projection possible).
  double pe_budget = 0.0;
  for (const BlockHealth& r : rows_)
    if (r.pe < header_.rated_pe)
      pe_budget += static_cast<double>(header_.rated_pe - r.pe);
  const double erase_rate =
      window_s > 0.0 ? static_cast<double>(win_erases) / window_s : 0.0;
  const double horizon_s = erase_rate > 0.0 ? pe_budget / erase_rate : -1.0;

  const double media_wear_pct =
      header_.rated_pe > 0
          ? 100.0 * mean / static_cast<double>(header_.rated_pe)
          : 0.0;

  char at_s[32];
  fmt_time(at_s, sizeof at_s, now);
  char buf[kLineCap];
  std::snprintf(
      buf, sizeof buf,
      "{\"t\":\"smart\",\"i\":%llu,\"us\":%s,\"media_wear_pct\":%.10g,"
      "\"spare_blocks\":%llu,\"pe_min\":%u,\"pe_max\":%u,\"pe_mean\":%.10g,"
      "\"pe_stddev\":%.10g,\"wear_cov\":%.10g,\"wear_gini\":%.10g,"
      "\"host_sectors\":%llu,\"flash_sectors\":%llu,\"overall_waf\":%.10g,"
      "\"waf_sectors\":%s,\"erases\":%llu,"
      "\"retention_evict_sectors\":%llu,\"retention_evict_per_s\":%.10g,"
      "\"pe_horizon_s\":%.10g}",
      static_cast<unsigned long long>(epochs_), at_s, media_wear_pct,
      static_cast<unsigned long long>(spare_blocks), pe_min, pe_max, mean,
      stddev, cov, gini, static_cast<unsigned long long>(win_host_sectors_),
      static_cast<unsigned long long>(win_flash_sectors), overall_waf, waf,
      static_cast<unsigned long long>(win_erases),
      static_cast<unsigned long long>(win_retention_evict_sectors_),
      retention_rate, horizon_s);
  out_buf_.append(buf);
  out_buf_.push_back('\n');
  ++lines_;
}

void HealthMonitor::finish() {
  if (finished_) return;
  char buf[kLineCap];
  std::snprintf(buf, sizeof buf,
                "{\"t\":\"end\",\"epochs\":%llu,\"lines\":%llu}",
                static_cast<unsigned long long>(epochs_),
                static_cast<unsigned long long>(lines_ + 1));
  write_line(buf);
  os_.flush();
  finished_ = true;
}

void HealthMonitor::save_state(util::StateWriter& w) const {
  w.tag("HLTH");
  w.f64(next_due_us_);
  w.f64(last_epoch_us_);
  w.u64(epochs_);
  w.u64(lines_);
  w.pod_vec(emitted_);
  w.pod_vec(gc_victims_);
  w.raw(win_cause_prog_full_, sizeof win_cause_prog_full_);
  w.raw(win_cause_prog_sub_, sizeof win_cause_prog_sub_);
  w.raw(win_cause_erases_, sizeof win_cause_erases_);
  w.u64(win_host_sectors_);
  w.u64(win_retention_evict_sectors_);
}

void HealthMonitor::load_state(util::StateReader& r) {
  r.tag("HLTH");
  next_due_us_ = r.f64();
  last_epoch_us_ = r.f64();
  epochs_ = r.u64();
  lines_ = r.u64();
  std::vector<BlockHealth> emitted;
  r.pod_vec(emitted);
  if (emitted.size() != total_blocks_)
    throw std::runtime_error("HealthMonitor::load_state: geometry mismatch");
  emitted_ = std::move(emitted);
  std::vector<std::uint32_t> victims;
  r.pod_vec(victims);
  if (victims.size() != total_blocks_)
    throw std::runtime_error("HealthMonitor::load_state: geometry mismatch");
  gc_victims_ = std::move(victims);
  r.raw(win_cause_prog_full_, sizeof win_cause_prog_full_);
  r.raw(win_cause_prog_sub_, sizeof win_cause_prog_sub_);
  r.raw(win_cause_erases_, sizeof win_cause_erases_);
  win_host_sectors_ = r.u64();
  win_retention_evict_sectors_ = r.u64();
}

}  // namespace esp::telemetry
