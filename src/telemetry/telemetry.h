// Telemetry facade: the one object a simulation run owns.
//
// Bundles the three tentpole pieces behind the `Sink` interface that the
// driver, FTLs and NAND device record into:
//   * a MetricsRegistry of named counters/gauges/histograms,
//   * a TraceRing of per-request op spans,
//   * a TimeSeriesSampler of periodic windowed snapshots.
//
// The facade also owns per-op latency histograms in two flavours: a
// cumulative one registered as "op/<name>/latency_us" (exported with the
// metrics), and a per-window one harvested into each Sample's percentile
// columns then reset.
//
// Recording is only ever reached through a nullable `Sink*` held by the
// instrumented components, so a run without telemetry pays a single
// pointer test per op.
#pragma once

#include <cstdint>
#include <vector>

#include "telemetry/causes.h"
#include "telemetry/metrics.h"
#include "telemetry/sampler.h"
#include "telemetry/sink.h"
#include "telemetry/trace.h"
#include "util/histogram.h"

namespace esp::telemetry {

class Journal;
class Auditor;
class HealthMonitor;
class ForensicsCollector;

struct TelemetryConfig {
  std::size_t trace_capacity = 1 << 16;
  /// Sampling period in simulated microseconds; 0 disables sampling.
  SimTime sample_interval_us = 0.0;
  /// Per-op latency detail: the cumulative + window + per-cause latency
  /// histograms and the trace-ring push. Downstream sinks (journal,
  /// auditor, health) and the per-cause op counters are fed either way.
  /// Turn off when the facade exists only to feed a streaming sink, so an
  /// always-on stream does not pay for histograms nobody will read.
  bool op_detail = true;
};

class Telemetry : public Sink {
 public:
  explicit Telemetry(const TelemetryConfig& config = {});

  // --- Sink ---------------------------------------------------------
  MetricsRegistry& registry() override { return registry_; }
  void record_op(const OpEvent& event) override;
  void push_cause(Cause cause, std::uint64_t detail, SimTime at) override;
  void pop_cause() override;
  void record_block(const BlockLifecycleEvent& event) override;

  const MetricsRegistry& registry() const { return registry_; }
  TraceRing& trace() { return trace_; }
  const TraceRing& trace() const { return trace_; }
  TimeSeriesSampler& sampler() { return sampler_; }
  const TimeSeriesSampler& sampler() const { return sampler_; }

  // --- Host-request lifecycle (driver only) -------------------------
  /// Opens a span for a new host request and returns its id; child ops
  /// recorded until end_request() are tagged with it. `arrival` is the
  /// host-side arrival time (defaults to issue when the caller has no
  /// arrival clock) and `tenant` the originating namespace -- both feed
  /// the forensics collector and the queue-wait histograms.
  std::uint32_t begin_request(SimTime issue, SimTime arrival = -1.0,
                              std::uint16_t tenant = 0);
  /// Closes the current request span, emitting the host-lane trace event
  /// and latency sample. `arg0`/`arg1` follow the op's arg schema
  /// (sectors / start sector for reads and writes).
  void end_request(OpKind kind, SimTime issue, SimTime done,
                   std::uint64_t arg0 = 0, std::uint64_t arg1 = 0);

  std::uint64_t requests_started() const { return next_request_id_ - 1; }

  // --- Causal attribution -------------------------------------------
  /// Innermost open cause scope (kHost when none is open). Every flash
  /// program/erase recorded through this sink increments exactly one
  /// per-cause bucket, so summing cause_count over all causes reproduces
  /// the device's program/erase counters bit-exactly (since attach).
  Cause current_cause() const {
    return cause_stack_.empty() ? Cause::kHost : cause_stack_.back().cause;
  }
  /// Per-cause flash-op count; `kind` must be kProgFull, kProgSub or
  /// kErase (anything else returns 0).
  std::uint64_t cause_count(Cause cause, OpKind kind) const;

  /// Attaches a Journal / Auditor / HealthMonitor downstream sink
  /// (nullptr detaches). All must outlive their attachment; detach before
  /// destroying them.
  void set_journal(Journal* journal) {
    journal_ = journal;
    recompute_op_mask();
  }
  void set_auditor(Auditor* auditor) {
    auditor_ = auditor;
    recompute_op_mask();
  }
  void set_health(HealthMonitor* health) {
    health_ = health;
    recompute_op_mask();
  }
  /// Attaches a latency-forensics collector: the facade feeds it request
  /// begin/end plus every flash-lane op (with cause + chain), and binds
  /// its phase histograms into this registry.
  void set_forensics(ForensicsCollector* forensics);
  Journal* journal() const { return journal_; }
  Auditor* auditor() const { return auditor_; }
  HealthMonitor* health() const { return health_; }
  ForensicsCollector* forensics() const { return forensics_; }

  // --- Sampler integration (driver only) ----------------------------
  /// Fills `sample`'s per-op and merged latency percentiles from the
  /// current window histograms, then resets the windows.
  void harvest_window(Sample& sample);

  // --- Snapshot support (core/snapshot.h) ---------------------------
  /// Checkpoints are taken between host requests with no open cause
  /// scope, so the per-request scratch is idle by construction (save
  /// throws otherwise). Archives the registry (cumulative, cause and
  /// downstream-bound histograms live there), trace ring, sampler,
  /// request-id cursor, per-window histograms and cause counters.
  /// Downstream sinks (journal/health/forensics/auditor) archive their
  /// own state; restore them before or after this call, order-free.
  void save_state(util::StateWriter& w) const;
  void load_state(util::StateReader& r);

 private:
  util::Histogram& window(OpKind kind) {
    return window_[static_cast<std::size_t>(kind)];
  }

  /// Recomputes the Sink op-interest mask from the attached consumers.
  void recompute_op_mask();

  MetricsRegistry registry_;
  TraceRing trace_;
  TimeSeriesSampler sampler_;
  bool op_detail_ = true;
  std::uint32_t next_request_id_ = 1;
  std::uint32_t current_request_ = 0;
  SimTime current_arrival_ = 0.0;  ///< arrival of the open request
  /// Registry-owned cumulative per-op latency histograms, indexed by kind.
  util::Histogram* cumulative_[kOpKindCount] = {};
  /// Queue-wait (issue - arrival) histograms for the four host-lane kinds,
  /// registered as "op/<kind>/wait_us" (op_detail only).
  util::Histogram* wait_[4] = {};
  /// Per-sampling-window latency histograms, reset on harvest.
  std::vector<util::Histogram> window_;

  // Causal attribution state. The counters are bound into the registry as
  // "cause/<name>/prog_full|prog_sub|erase"; the histograms are owned by
  // the registry as "cause/<name>/latency_us".
  std::vector<CauseFrame> cause_stack_;
  std::uint64_t cause_progs_full_[kCauseCount] = {};
  std::uint64_t cause_progs_sub_[kCauseCount] = {};
  std::uint64_t cause_erases_[kCauseCount] = {};
  util::Histogram* cause_latency_[kCauseCount] = {};
  Journal* journal_ = nullptr;
  Auditor* auditor_ = nullptr;
  HealthMonitor* health_ = nullptr;
  ForensicsCollector* forensics_ = nullptr;
};

}  // namespace esp::telemetry
