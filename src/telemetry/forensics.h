// Tail-latency forensics: per-request stall attribution, slowest-N
// exemplars and windowed p99/p999 blame decomposition.
//
// Every host request the driver submits gets a *phase breakdown* of its
// response time (arrival -> done):
//
//   queue_wait   arrival -> issue: the wait for a queue-depth window slot
//   media_read   flash reads serving the host path (cause = host)
//   media_prog   flash programs/erases on the host path (incl. the program
//                half of an RMW merge)
//   rmw_read     flash reads inside an RMW scope (the paper's read cost of
//                full-page read-modify-write)
//   stall_gc     time behind flash ops inside a GC scope
//   stall_maint  time behind forward-migration / retention-eviction /
//                wear-leveling flash ops
//   stall_flush  time behind flash ops inside an explicit flush scope
//   buffer_wait  the residual: service time not covered by any flash op --
//                buffer-insert/drain bookkeeping on the buffered write path
//
// Attribution works on the *flash command lane only* (programs, reads,
// erases), classified by the existing Cause taxonomy: the simulated
// intervals of a request's flash ops overlap freely (multi-chip
// parallelism), so an interval sweep clips them to [issue, done) and
// charges each elementary time slice to exactly one phase (stalls win over
// host media work, so "time stalled behind GC" means what it says).
//
// Invariant (same discipline as the journal's counter reconciliation): the
// eight phases, folded in enum order, sum BIT-EXACTLY to response time.
// buffer_wait is defined as the reconciled residual -- a short correction
// loop absorbs the one-or-two-ULP slack IEEE addition leaves -- and the
// collector verifies the fold on every request; in audit mode a failed
// reconciliation throws std::logic_error.
//
// Outputs:
//   * per-kind phase histograms ("forensics/<op>/<phase>_us") and, on
//     multi-tenant runs, per-tenant ones ("forensics/tenant/<i>/...") in
//     the bound MetricsRegistry -- a phase with zero duration contributes
//     no sample (the histograms answer "when this phase occurs, how
//     long?", and skipping zeros keeps the always-on cost down);
//   * a windowed blame stream: every `window_requests` requests, the
//     slowest 1% (ceil) are summed per phase -- which phase dominates the
//     tail, per window;
//   * deterministic slowest-N exemplars (bounded top-K heap, ties broken
//     on request id) dumped with full phase breakdown, distinct cause
//     chains and touched block addresses;
// all streamed as schema-v1 JSONL (hdr / blame / ex / tnt / end lines,
// "%.10g" timestamps, shard fields in the hdr only when shards > 1 --
// mirroring the journal's format discipline).
#pragma once

#include <array>
#include <cstdint>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "telemetry/causes.h"
#include "telemetry/sink.h"
#include "util/histogram.h"

namespace esp::telemetry {

class MetricsRegistry;

/// Response-time phases, in the (fixed) fold order the bit-exact sum
/// invariant is defined over.
enum class Phase : std::uint8_t {
  kQueueWait = 0,
  kMediaRead,
  kMediaProg,
  kRmwRead,
  kStallGc,
  kStallMaint,
  kStallFlush,
  kBufferWait,
  kCount,
};

inline constexpr std::size_t kPhaseCount =
    static_cast<std::size_t>(Phase::kCount);

/// Stable metric/JSONL name of a phase.
constexpr const char* phase_name(Phase phase) {
  switch (phase) {
    case Phase::kQueueWait: return "queue_wait";
    case Phase::kMediaRead: return "media_read";
    case Phase::kMediaProg: return "media_prog";
    case Phase::kRmwRead: return "rmw_read";
    case Phase::kStallGc: return "stall_gc";
    case Phase::kStallMaint: return "stall_maint";
    case Phase::kStallFlush: return "stall_flush";
    case Phase::kBufferWait: return "buffer_wait";
    case Phase::kCount: break;
  }
  return "unknown";
}

/// Phase a flash-lane op charges, from its attributed cause (innermost
/// open scope) and kind. Host-cause programs/erases are media work; reads
/// under an RMW scope are the paper's full-page-read cost; everything
/// under a mechanism scope is a stall.
constexpr Phase classify_phase(Cause cause, OpKind kind) {
  switch (cause) {
    case Cause::kGcCopy: return Phase::kStallGc;
    case Cause::kForwardMigration:
    case Cause::kRetentionEvict:
    case Cause::kWearLevel: return Phase::kStallMaint;
    case Cause::kFlush: return Phase::kStallFlush;
    case Cause::kRmw:
      return kind == OpKind::kRead ? Phase::kRmwRead : Phase::kMediaProg;
    default:
      return kind == OpKind::kRead ? Phase::kMediaRead : Phase::kMediaProg;
  }
}

/// One request's phase decomposition. fold() is THE canonical sum: fixed
/// enum order, so "fold() == response" is a bit-exact statement.
struct PhaseBreakdown {
  std::array<double, kPhaseCount> us{};

  double fold() const {
    double total = 0.0;
    for (std::size_t p = 0; p < kPhaseCount; ++p) total += us[p];
    return total;
  }
};

/// Per-tenant blame summary harvested into RunResult on multi-tenant runs.
struct TenantBlame {
  std::uint32_t tenant = 0;
  std::uint64_t requests = 0;
  /// Phase totals over every request of this tenant.
  std::array<double, kPhaseCount> phase_us{};
  /// Phase totals over the tenant's slowest `tail_requests` requests (its
  /// bounded per-tenant exemplar set).
  std::uint64_t tail_requests = 0;
  std::array<double, kPhaseCount> tail_phase_us{};
  /// Slowest retained response time (the tail set's maximum).
  double worst_response_us = 0.0;
};

/// Run-identifying fields written into the forensics hdr line.
struct ForensicsHeader {
  std::string ftl;
  std::uint32_t chips = 0;
  std::uint32_t blocks_per_chip = 0;
  std::uint32_t pages_per_block = 0;
  std::uint32_t subpages_per_page = 0;
  std::uint64_t page_bytes = 0;
  std::uint64_t seed = 0;
  /// Shard identity (core/shard.h); fields emitted only when shards > 1.
  std::uint32_t shard = 0;
  std::uint32_t shards = 1;
};

class ForensicsCollector {
 public:
  static constexpr int kSchemaVersion = 1;

  struct Config {
    /// Slowest-N exemplars retained (per stream) and per tenant.
    std::uint32_t top_k = 16;
    /// Blame-window size in requests; the final partial window is closed
    /// at finish(). 0 disables the blame stream.
    std::uint32_t window_requests = 4096;
    /// Throw std::logic_error when a request's phase fold fails to
    /// reconcile with its response time (the online-auditor discipline).
    bool audit = false;
    /// Bind per-tenant phase histograms ("forensics/tenant/<i>/...").
    /// Off by default: on a single-tenant run they would mirror the
    /// per-kind family add-for-add, doubling the per-request histogram
    /// cost for no information. Tenant phase SUMS (tenant_blame) are
    /// tracked regardless.
    bool tenant_hists = false;
  };

  /// Writes the hdr line immediately; the stream must outlive the
  /// collector. With `resume` set, no hdr line is written (appending to an
  /// existing stream after a snapshot restore; stream state arrives via
  /// load_state).
  ForensicsCollector(std::ostream& os, const ForensicsHeader& header,
                     const Config& config, bool resume = false);

  /// Binds the phase histograms into `registry` (lazily per tenant).
  /// Call once, before the first request; nullptr detaches.
  void bind_registry(MetricsRegistry* registry);

  // --- Fed by the Telemetry facade ----------------------------------
  void begin_request(std::uint32_t id, SimTime arrival, SimTime issue,
                     std::uint16_t tenant);
  /// One flash-lane op executed on behalf of the open request, with its
  /// attributed cause and full cause chain (outermost first). Non-flash
  /// lanes are ignored (their spans overlap the flash work they wrap).
  /// Inline: this is the collector's per-op tax, and the common op extends
  /// the current segment and short-circuits both dedup scans.
  void on_op(const OpEvent& event, Cause cause,
             std::span<const CauseFrame> chain) {
    if (!open_) return;
    switch (event.kind) {
      case OpKind::kProgFull:
      case OpKind::kProgSub:
      case OpKind::kRead:
      case OpKind::kErase:
        break;
      default:
        return;  // host/FTL lanes overlap the flash work they wrap
    }
    // Coalesce with the previous segment when same-phase and overlapping:
    // a GC/flush burst records hundreds of contiguous ops, and the union
    // per phase -- all the sweep ever sees -- is unchanged by merging.
    const Phase phase = classify_phase(cause, event.kind);
    Segment* last = segments_.empty() ? nullptr : &segments_.back();
    if (last && last->phase == phase && event.start <= last->end &&
        event.start >= last->start) {
      if (event.end > last->end) last->end = event.end;
    } else {
      segments_.push_back(Segment{event.start, event.end, phase});
    }
    // The bare host chain (no open cause scope) is by far the most common
    // and costs one flag test once recorded; repeated contacts with the
    // most recent block cost two compares.
    if (!(chain.empty() && empty_chain_seen_)) note_chain(chain);
    if (event.chip != kNoChip &&
        !(!blocks_.empty() && blocks_.back().first == event.chip &&
          blocks_.back().second == event.block))
      note_block(event.chip, event.block);
  }
  void end_request(OpKind kind, SimTime done);

  /// Closes the final partial blame window, writes exemplar + per-tenant
  /// + end lines (idempotent).
  void finish();

  std::uint64_t requests() const { return requests_; }
  std::uint64_t exemplars_retained() const { return heap_.size(); }
  /// Requests that produced no exemplar line (requests - top_k kept).
  std::uint64_t truncated() const {
    return requests_ - static_cast<std::uint64_t>(heap_.size());
  }
  std::uint64_t windows_written() const { return windows_; }
  /// Requests whose phase fold failed to reconcile bit-exactly with their
  /// response time (0 in any healthy run; audit mode throws instead).
  std::uint64_t reconcile_failures() const { return reconcile_failures_; }

  /// Per-tenant blame summaries, tenant-id order. Meaningful after the
  /// run; single-tenant runs report one entry for tenant 0.
  std::vector<TenantBlame> tenant_blame() const;

  /// Snapshot support. Taken between requests (save throws on an open
  /// request, like the facade): stream counters, the exemplar and blame
  /// heaps (exact array layout) and per-tenant state are archived. Call
  /// load after bind_registry so restored tenants re-bind their
  /// histograms.
  void save_state(util::StateWriter& w) const;
  void load_state(util::StateReader& r);

 private:
  struct Segment {
    SimTime start = 0.0;
    SimTime end = 0.0;
    Phase phase = Phase::kMediaProg;
  };

  static constexpr std::size_t kMaxChains = 4;
  static constexpr std::size_t kMaxBlocks = 16;

  /// Retained exemplar payload (top-K heap entry).
  struct Exemplar {
    std::uint32_t id = 0;
    std::uint16_t tenant = 0;
    OpKind kind = OpKind::kCount;
    SimTime arrival = 0.0;
    SimTime issue = 0.0;
    SimTime done = 0.0;
    double response = 0.0;
    PhaseBreakdown phases;
    std::vector<std::string> chains;  ///< distinct cause chains, <= kMaxChains
    std::uint32_t chains_dropped = 0;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> blocks;  ///< chip,blk
    std::uint64_t blocks_touched = 0;  ///< distinct-ish total (first-contact)
  };

  /// One retained tail candidate of the open blame window. The window
  /// keeps only its slowest ceil(window_requests/100) requests (bounded
  /// min-extremeness heap, same tie-break as the exemplar heap): the blame
  /// line needs phase sums over the slowest 1% plus p99/p999, never the
  /// full window, so the common-case per-request cost is one comparison.
  struct WindowEntry {
    std::uint32_t id = 0;
    double response = 0.0;
    PhaseBreakdown phases;
  };

  struct TenantState {
    std::uint64_t requests = 0;
    std::array<double, kPhaseCount> phase_us{};
    /// Bounded slowest-K set, same (response desc, id asc) order as the
    /// global exemplar heap.
    std::vector<Exemplar> heap;
    /// Registry-owned per-tenant phase histograms (null without registry).
    std::array<util::Histogram*, kPhaseCount> hist{};
  };

  /// True when `a` is less extreme than `b` (slower response wins, ties
  /// break toward the SMALLER request id -- the stable-tie-break rule).
  static bool less_extreme(const Exemplar& a, const Exemplar& b) {
    if (a.response != b.response) return a.response < b.response;
    return a.id > b.id;
  }

  /// Offers `ex` to a bounded slowest-K heap (min-heap on extremeness).
  static void offer(std::vector<Exemplar>& heap, std::uint32_t k,
                    const Exemplar& ex);

  TenantState& tenant_state(std::uint16_t tenant);
  void save_exemplar(util::StateWriter& w, const Exemplar& ex) const;
  Exemplar load_exemplar(util::StateReader& r) const;
  /// Slow halves of on_op: dedup-and-record a cause chain / a touched
  /// block after the inline fast checks miss.
  void note_chain(std::span<const CauseFrame> chain);
  void note_block(std::uint32_t chip, std::uint32_t block);
  void close_window();
  void write_line(const char* buf);
  void write_exemplar(const Exemplar& ex, std::uint32_t rank);

  std::ostream& os_;
  Config config_;
  MetricsRegistry* registry_ = nullptr;
  /// Per-host-op-kind phase histograms (kHostWrite..kHostTrim).
  std::array<std::array<util::Histogram*, kPhaseCount>, 4> kind_hist_{};

  // Open-request scratch, reused across requests (no steady-state
  // allocation).
  bool open_ = false;
  std::uint32_t cur_id_ = 0;
  std::uint16_t cur_tenant_ = 0;
  SimTime cur_arrival_ = 0.0;
  SimTime cur_issue_ = 0.0;
  std::vector<Segment> segments_;
  std::array<std::uint64_t, kMaxChains> chain_fp_{};
  std::array<std::string, kMaxChains> chain_str_;
  std::size_t chain_count_ = 0;
  std::uint32_t chains_dropped_ = 0;
  /// Fast path: the bare host chain (no open cause scope) is by far the
  /// most common, and once recorded every later bare-chain op can skip the
  /// fingerprint fold and table scan outright.
  bool empty_chain_seen_ = false;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> blocks_;
  std::uint64_t blocks_touched_ = 0;
  /// Interval-sweep scratch: boundary events (time, phase, +1/-1).
  struct Boundary {
    SimTime at;
    std::uint8_t phase;
    std::int8_t delta;
  };
  std::vector<Boundary> boundaries_;

  // Stream state.
  std::uint64_t requests_ = 0;
  std::uint64_t windows_ = 0;
  std::uint64_t reconcile_failures_ = 0;
  bool finished_ = false;
  std::vector<Exemplar> heap_;          ///< global slowest-K
  std::vector<WindowEntry> window_;     ///< open window's tail candidates
  std::uint32_t window_tail_cap_ = 0;   ///< ceil(window_requests / 100)
  std::uint64_t window_count_ = 0;      ///< requests in the open window
  SimTime window_start_ = 0.0;
  SimTime window_end_ = 0.0;
  std::vector<TenantState> tenants_;    ///< indexed by tenant id
};

}  // namespace esp::telemetry
