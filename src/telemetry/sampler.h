// Time-series sampler: periodic snapshots of throughput, WAF, GC/wear
// activity, region occupancy and per-op latency percentiles over each
// sampling window of simulated time.
//
// The sampler itself is passive storage plus cadence bookkeeping: the
// driver (the only component that sees the FTL, device and clock at once)
// decides when a window closes, fills in a `Sample` from counter deltas,
// and pushes it. Rows export as CSV (fixed, documented column schema --
// see docs/TELEMETRY.md) or JSON.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "telemetry/sink.h"
#include "util/serialize.h"

namespace esp::telemetry {

/// One closed sampling window. Counter-like fields are windowed deltas,
/// `region_*` are point-in-time gauges, percentiles are computed over the
/// window's per-op latency histograms.
struct Sample {
  double sim_time_s = 0.0;  ///< window end, simulated seconds
  std::uint64_t requests = 0;
  double iops = 0.0;
  double request_waf = 1.0;  ///< small-write request WAF (paper Table 1)
  double overall_waf = 1.0;
  std::uint64_t gc_invocations = 0;
  std::uint64_t gc_copy_sectors = 0;
  std::uint64_t erases = 0;
  std::uint64_t prog_full = 0;
  std::uint64_t prog_sub = 0;
  std::uint64_t forward_migrations = 0;
  std::uint64_t retention_evictions = 0;
  std::uint64_t rmw_ops = 0;
  double region_blocks = 0.0;         ///< subpage/log region occupancy
  double region_valid_sectors = 0.0;
  double op_p50_us[kOpKindCount] = {};
  double op_p99_us[kOpKindCount] = {};
  double all_ops_p50_us = 0.0;  ///< merged across every op lane
  double all_ops_p99_us = 0.0;
  double all_ops_p999_us = 0.0;
};

class TimeSeriesSampler {
 public:
  /// @param interval_us  sampling period in simulated microseconds;
  ///                     0 disables the sampler entirely.
  explicit TimeSeriesSampler(SimTime interval_us = 0.0);

  bool enabled() const { return interval_us_ > 0.0; }
  SimTime interval_us() const { return interval_us_; }

  /// Anchors the first window at `now` (called once at attach).
  void start(SimTime now);
  /// True when the current window has elapsed at simulated time `now`.
  bool due(SimTime now) const;

  /// Appends a closed window and re-arms the cadence from `now`.
  void push(const Sample& sample, SimTime now);

  const std::vector<Sample>& samples() const { return samples_; }
  /// Sim-time of the last pushed sample (us); -1 when none yet.
  SimTime last_sample_us() const { return last_sample_us_; }

  /// Fixed CSV schema (stable across runs; append-only evolution).
  static std::string csv_header();
  void write_csv(std::ostream& os) const;
  /// JSON array of row objects (same fields as the CSV columns).
  void write_json(std::ostream& os) const;

  /// Snapshot support: cadence cursors + every closed window, so a
  /// restored run's sample series continues (and finally exports)
  /// byte-identically. The interval is part of the run's identity and
  /// must match.
  void save_state(util::StateWriter& w) const;
  void load_state(util::StateReader& r);

 private:
  SimTime interval_us_;
  SimTime next_due_us_ = 0.0;
  SimTime last_sample_us_ = -1.0;
  std::vector<Sample> samples_;
};

}  // namespace esp::telemetry
