// MetricsRegistry: named counters, gauges and histograms with per-instance
// scoping.
//
// Design goals, in order:
//   1. recording must be no-op-cheap on the simulator's hot paths -- a
//      Counter increment is a plain `++u64`, and existing `++stats_.field`
//      sites can stay untouched by *binding* the field into the registry
//      (the registry holds a pointer and reads the live value at export
//      time);
//   2. deterministic export -- all maps are ordered, so JSON/CSV dumps are
//      byte-stable across runs;
//   3. instance scoping -- components register under a name prefix
//      ("subFTL/", "nand/"), so several FTL instances can share one
//      registry without colliding.
//
// Lifetime: bound counters and provider gauges reference the component
// that registered them. Before that component dies, call `materialize()`
// to snapshot every external reference into an owned value -- exports
// performed afterwards stay valid (core::Ssd does this in its destructor).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "util/histogram.h"

namespace esp::telemetry {

/// Monotonic counter. Plain uint64 increment; no atomics (the simulator is
/// single-threaded by design).
class Counter {
 public:
  void inc(std::uint64_t delta = 1) noexcept { value_ += delta; }
  std::uint64_t value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Point-in-time value. Either set directly or backed by a provider
/// callback evaluated lazily at read time (for live occupancy numbers).
class Gauge {
 public:
  void set(double v) noexcept {
    value_ = v;
    provider_ = nullptr;
  }
  void set_provider(std::function<double()> provider) {
    provider_ = std::move(provider);
  }
  double value() const { return provider_ ? provider_() : value_; }
  bool has_provider() const noexcept { return provider_ != nullptr; }
  /// Replaces a provider by its current value (see materialize()).
  void materialize() {
    if (provider_) {
      value_ = provider_();
      provider_ = nullptr;
    }
  }

 private:
  double value_ = 0.0;
  std::function<double()> provider_;
};

class MetricsRegistry {
 public:
  /// Returns the owned counter of that name, creating it on first use.
  /// References stay valid for the registry's lifetime.
  Counter& counter(const std::string& name);

  /// Binds `name` to an external uint64 (e.g. an FtlStats field): the
  /// registry reports that field's live value without owning it. The
  /// source must outlive the registry or be detached via materialize().
  void bind_counter(const std::string& name, const std::uint64_t* source);

  Gauge& gauge(const std::string& name);

  /// Returns the histogram of that name, creating it with the given shape
  /// on first use (later calls ignore the shape arguments).
  util::Histogram& histogram(const std::string& name, double lo, double hi,
                             std::size_t buckets);

  /// Current value of an owned or bound counter; `fallback` when absent.
  std::uint64_t counter_value(const std::string& name,
                              std::uint64_t fallback = 0) const;
  double gauge_value(const std::string& name, double fallback = 0.0) const;
  const util::Histogram* find_histogram(const std::string& name) const;

  /// Deterministic (name-ordered) iteration for exporters.
  void visit_counters(
      const std::function<void(const std::string&, std::uint64_t)>& fn) const;
  void visit_gauges(
      const std::function<void(const std::string&, double)>& fn) const;
  void visit_histograms(
      const std::function<void(const std::string&, const util::Histogram&)>&
          fn) const;

  std::size_t counter_count() const {
    return counters_.size() + bound_.size();
  }
  std::size_t gauge_count() const { return gauges_.size(); }
  std::size_t histogram_count() const { return histograms_.size(); }

  /// Converts every bound counter and provider gauge into an owned
  /// snapshot, severing all references into external components. Safe to
  /// call repeatedly.
  void materialize();

  /// Accumulates another registry into this one: counters add (bound
  /// counters on either side contribute their current value), gauges add,
  /// histograms merge when shapes match and are copied when absent here.
  /// Used by the parallel experiment runner to reconcile per-cell
  /// registries into a run-wide view at join time.
  void merge_from(const MetricsRegistry& other);

  /// Zeroes owned counters/gauges/histograms and drops bindings.
  void reset();

  /// Snapshot support (core/snapshot.h). Owned counters, plain-value
  /// gauges and every histogram are archived by name; bound counters and
  /// provider gauges are skipped -- they read component fields the
  /// components archive themselves and re-bind at attach. Loading
  /// find-or-creates each entry, so histograms registered lazily after the
  /// snapshot point (e.g. per-tenant forensics families) restore before
  /// their component re-binds them.
  void save_state(util::StateWriter& w) const;
  void load_state(util::StateReader& r);

 private:
  // std::map: reference stability + ordered export.
  std::map<std::string, Counter> counters_;
  std::map<std::string, const std::uint64_t*> bound_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, util::Histogram> histograms_;
};

/// Name-prefixing view over a registry: `Scope(reg, "subFTL").counter("x")`
/// resolves to the registry's "subFTL/x".
class Scope {
 public:
  Scope(MetricsRegistry& registry, std::string prefix)
      : registry_(registry), prefix_(std::move(prefix) + "/") {}

  Counter& counter(const std::string& name) {
    return registry_.counter(prefix_ + name);
  }
  void bind_counter(const std::string& name, const std::uint64_t* source) {
    registry_.bind_counter(prefix_ + name, source);
  }
  Gauge& gauge(const std::string& name) {
    return registry_.gauge(prefix_ + name);
  }
  util::Histogram& histogram(const std::string& name, double lo, double hi,
                             std::size_t buckets) {
    return registry_.histogram(prefix_ + name, lo, hi, buckets);
  }

 private:
  MetricsRegistry& registry_;
  std::string prefix_;
};

}  // namespace esp::telemetry
