// Causal attribution journal: schema-versioned JSONL event stream.
//
// The Journal is fed by the Telemetry facade (set_journal) and writes one
// JSON object per line to a caller-owned ostream, with bounded memory: the
// only retained state is per-block "last owning pool" (one byte per
// physical block, used to derive sub<->full conversion events) and the
// running line counters. Everything else streams straight out.
//
// Schema v1 line types (all lines carry `"t"`):
//   hdr    run header: schema version, FTL, geometry, workload seed
//   host   a host request span (writes/trims/flushes; reads are skipped
//          to bound journal size -- they never amplify writes)
//   op     a physical flash program/erase with its cause and full cause
//          chain (innermost last, '>'-joined), request id, chip/block and
//          kind-specific address fields
//   mech   an FTL mechanism span (gc_copy, rmw, forward_migration,
//          retention_evict, wear_level) with its two detail args
//   scope  a cause-scope boundary: `"ph":"B"` open / `"ph":"E"` close,
//          matching Chrome-trace phase semantics; strictly nested
//   blk    a block lifecycle transition (allocated, level_advanced,
//          converted, erased, retired) with pool, level, valid, P/E
//   end    trailer: total event lines written and truncated counts
//
// Timestamps are simulated microseconds printed with "%.10g" so re-parsing
// round-trips the double exactly for all times this simulator produces.
//
// Truncation: when `max_events` > 0, event lines past the cap are counted
// (truncated()) instead of written; hdr/end lines are always emitted.
#pragma once

#include <cstdint>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "telemetry/causes.h"
#include "telemetry/sink.h"
#include "util/serialize.h"

namespace esp::telemetry {

/// Run-identifying fields written into the journal's hdr line.
struct JournalHeader {
  std::string ftl;
  std::uint32_t chips = 0;
  std::uint32_t blocks_per_chip = 0;
  std::uint32_t pages_per_block = 0;
  std::uint32_t subpages_per_page = 0;
  std::uint64_t page_bytes = 0;
  std::uint64_t seed = 0;
  /// Shard identity of a sharded run's per-shard stream (core/shard.h):
  /// `"shard"`/`"shards"` fields are emitted in the hdr line only when
  /// shards > 1, so unsharded journals keep their legacy bytes.
  std::uint32_t shard = 0;
  std::uint32_t shards = 1;
};

class Journal {
 public:
  static constexpr int kSchemaVersion = 1;

  /// Writes the hdr line immediately. The stream must outlive the Journal.
  /// `max_events` caps event lines (0 = unbounded). With `resume` set, no
  /// hdr line is written: the caller is appending to an existing stream
  /// after a snapshot restore, and the journal's cursors arrive via
  /// load_state -- the resumed file stays byte-identical to an
  /// uninterrupted run's.
  Journal(std::ostream& os, const JournalHeader& header,
          std::uint64_t max_events = 0, bool resume = false);

  /// Records one op event with its attributed cause and the full cause
  /// chain (outermost first). Flash ops become `op` lines, host-lane ops
  /// `host` lines (reads skipped), FTL-lane ops `mech` lines.
  void on_op(const OpEvent& event, Cause cause,
             std::span<const CauseFrame> chain, std::uint32_t request_id);

  /// Records a cause-scope boundary; `phase` is 'B' or 'E'. Close events
  /// are stamped with the latest simulated time seen on the stream.
  void on_scope(char phase, const CauseFrame& frame);

  /// Records a block lifecycle transition; synthesizes a `converted` line
  /// when an allocation's pool differs from the block's previous owner.
  void on_block(const BlockLifecycleEvent& event);

  /// Writes the end trailer (idempotent; later events are dropped).
  void finish();

  std::uint64_t events_written() const { return events_; }
  std::uint64_t truncated() const { return truncated_; }

  /// Snapshot support: line counters, the scope-close time high-water mark
  /// and the per-block last-owner table (conversion-event derivation).
  void save_state(util::StateWriter& w) const;
  void load_state(util::StateReader& r);

 private:
  /// Returns true if the next event line may be written; otherwise counts
  /// it as truncated.
  bool admit();
  void write_line(const char* buf);
  /// '>'-joined cause-chain names, outermost first ("" for host-path ops).
  std::string chain_string(std::span<const CauseFrame> chain) const;

  std::ostream& os_;
  std::uint32_t blocks_per_chip_;
  std::uint64_t max_events_;
  std::uint64_t events_ = 0;
  std::uint64_t truncated_ = 0;
  bool finished_ = false;
  SimTime last_time_ = 0.0;  ///< high-water mark for scope-close stamps
  /// Last pool to allocate each physical block: index into pool_names_
  /// plus one (0 = never allocated). Sized chips * blocks_per_chip.
  std::vector<std::uint8_t> last_pool_;
  std::vector<std::string> pool_names_;
};

}  // namespace esp::telemetry
