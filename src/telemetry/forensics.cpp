#include "telemetry/forensics.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "telemetry/metrics.h"

namespace esp::telemetry {
namespace {

// Longest line: an exemplar with four chains and sixteen block addresses.
constexpr std::size_t kLineCap = 1024;

// Same rationale as the journal: "%.10g" round-trips every simulated time
// this simulator produces.
void fmt_time(char* out, std::size_t cap, SimTime t) {
  std::snprintf(out, cap, "%.10g", t);
}

// Phase histogram shape: same 100 ms clamped range as the facade's
// op-latency histograms but 100 us buckets, not 25 us. Phase durations are
// an always-on per-request tax, and two dozen 4000-bucket histograms
// (32 KiB each) thrash the cache; 8 KiB keeps the whole family resident.
constexpr double kPhaseLoUs = 0.0;
constexpr double kPhaseHiUs = 100'000.0;
constexpr std::size_t kPhaseBuckets = 1000;

/// Stall phases outrank host media work so "time stalled behind GC" is
/// charged to the stall even when a host read overlaps it; among media
/// phases, RMW reads outrank the program half, which outranks plain reads.
constexpr Phase kPriority[] = {
    Phase::kStallGc,   Phase::kStallMaint, Phase::kStallFlush,
    Phase::kRmwRead,   Phase::kMediaProg,  Phase::kMediaRead,
};

/// Serializes a phase array as a JSON object body ({"queue_wait_us":...}).
int fmt_phases(char* out, std::size_t cap,
               const std::array<double, kPhaseCount>& us) {
  int n = 0;
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    char v[32];
    fmt_time(v, sizeof v, us[p]);
    n += std::snprintf(out + n, cap - static_cast<std::size_t>(n),
                       "%s\"%s_us\":%s", p == 0 ? "" : ",",
                       phase_name(static_cast<Phase>(p)), v);
  }
  return n;
}

}  // namespace

ForensicsCollector::ForensicsCollector(std::ostream& os,
                                       const ForensicsHeader& header,
                                       const Config& config, bool resume)
    : os_(os), config_(config) {
  if (config_.top_k == 0) config_.top_k = 1;
  segments_.reserve(256);
  boundaries_.reserve(512);
  blocks_.reserve(kMaxBlocks);
  heap_.reserve(config_.top_k);
  window_tail_cap_ = (config_.window_requests + 99) / 100;
  if (config_.window_requests > 0) window_.reserve(window_tail_cap_);
  if (resume) return;  // appending after a restore; hdr already on disk

  char shard_tag[64] = "";
  if (header.shards > 1)
    std::snprintf(shard_tag, sizeof shard_tag, ",\"shard\":%u,\"shards\":%u",
                  header.shard, header.shards);
  char buf[kLineCap];
  std::snprintf(buf, sizeof buf,
                "{\"v\":%d,\"t\":\"hdr\",\"stream\":\"forensics\","
                "\"ftl\":\"%s\",\"chips\":%u,\"blocks_per_chip\":%u,"
                "\"pages_per_block\":%u,\"subs\":%u,\"page_bytes\":%llu,"
                "\"seed\":%llu,\"top_k\":%u,\"window_requests\":%u%s}",
                kSchemaVersion, header.ftl.c_str(), header.chips,
                header.blocks_per_chip, header.pages_per_block,
                header.subpages_per_page,
                static_cast<unsigned long long>(header.page_bytes),
                static_cast<unsigned long long>(header.seed), config_.top_k,
                config_.window_requests, shard_tag);
  write_line(buf);
}

void ForensicsCollector::bind_registry(MetricsRegistry* registry) {
  registry_ = registry;
  if (!registry_) {
    for (auto& kh : kind_hist_) kh.fill(nullptr);
    for (TenantState& t : tenants_) t.hist.fill(nullptr);
    return;
  }
  for (std::size_t k = 0; k < kind_hist_.size(); ++k) {
    const std::string prefix =
        std::string("forensics/") + op_name(static_cast<OpKind>(k)) + "/";
    for (std::size_t p = 0; p < kPhaseCount; ++p)
      kind_hist_[k][p] = &registry_->histogram(
          prefix + phase_name(static_cast<Phase>(p)) + "_us", kPhaseLoUs,
          kPhaseHiUs, kPhaseBuckets);
  }
}

ForensicsCollector::TenantState& ForensicsCollector::tenant_state(
    std::uint16_t tenant) {
  if (tenants_.size() <= tenant) tenants_.resize(tenant + 1u);
  TenantState& t = tenants_[tenant];
  if (config_.tenant_hists && registry_ && t.hist[0] == nullptr) {
    const std::string prefix =
        "forensics/tenant/" + std::to_string(tenant) + "/";
    for (std::size_t p = 0; p < kPhaseCount; ++p)
      t.hist[p] = &registry_->histogram(
          prefix + phase_name(static_cast<Phase>(p)) + "_us", kPhaseLoUs,
          kPhaseHiUs, kPhaseBuckets);
  }
  return t;
}

void ForensicsCollector::begin_request(std::uint32_t id, SimTime arrival,
                                       SimTime issue, std::uint16_t tenant) {
  open_ = true;
  cur_id_ = id;
  cur_tenant_ = tenant;
  cur_arrival_ = arrival;
  cur_issue_ = issue;
  segments_.clear();
  chain_count_ = 0;
  chains_dropped_ = 0;
  empty_chain_seen_ = false;
  blocks_.clear();
  blocks_touched_ = 0;
}

void ForensicsCollector::note_chain(std::span<const CauseFrame> chain) {
  // Distinct cause chains, deduped by a cheap fold of the cause bytes
  // (chains are <= ~4 frames deep; the string is only built once per
  // distinct fingerprint per request).
  if (chain.empty()) empty_chain_seen_ = true;
  std::uint64_t fp = 0x9e3779b97f4a7c15ull;
  for (const CauseFrame& frame : chain)
    fp = (fp ^ static_cast<std::uint64_t>(frame.cause)) * 0x100000001b3ull;
  for (std::size_t i = 0; i < chain_count_; ++i)
    if (chain_fp_[i] == fp) return;
  if (chain_count_ < kMaxChains) {
    chain_fp_[chain_count_] = fp;
    std::string& s = chain_str_[chain_count_];
    s.clear();
    for (const CauseFrame& frame : chain) {
      if (!s.empty()) s += '>';
      s += cause_name(frame.cause);
    }
    ++chain_count_;
  } else {
    ++chains_dropped_;
  }
}

void ForensicsCollector::note_block(std::uint32_t chip, std::uint32_t block) {
  // Touched physical blocks, first-contact order, bounded (the inline
  // caller already rejected a repeat of the most recent contact).
  for (const auto& b : blocks_)
    if (b.first == chip && b.second == block) return;
  ++blocks_touched_;
  if (blocks_.size() < kMaxBlocks) blocks_.emplace_back(chip, block);
}

void ForensicsCollector::offer(std::vector<Exemplar>& heap, std::uint32_t k,
                               const Exemplar& ex) {
  if (heap.size() < k) {
    heap.push_back(ex);
    std::push_heap(heap.begin(), heap.end(), [](const Exemplar& a,
                                                const Exemplar& b) {
      return !less_extreme(a, b);  // min-heap on extremeness
    });
    return;
  }
  if (!less_extreme(heap.front(), ex)) return;
  std::pop_heap(heap.begin(), heap.end(), [](const Exemplar& a,
                                             const Exemplar& b) {
    return !less_extreme(a, b);
  });
  heap.back() = ex;
  std::push_heap(heap.begin(), heap.end(), [](const Exemplar& a,
                                              const Exemplar& b) {
    return !less_extreme(a, b);
  });
}

void ForensicsCollector::end_request(OpKind kind, SimTime done) {
  if (!open_) return;
  open_ = false;
  ++requests_;
  const double response = done - cur_arrival_;

  PhaseBreakdown b;
  b.us[static_cast<std::size_t>(Phase::kQueueWait)] =
      cur_issue_ - cur_arrival_;

  // Interval sweep over the request's flash ops, clipped to [issue, done):
  // the ops overlap in simulated time (chip parallelism), so each
  // elementary slice is charged to the highest-priority active phase.
  // Single-op requests (most reads, unbuffered small writes) skip the
  // sweep entirely -- one clipped interval IS its own decomposition.
  if (segments_.size() == 1) {
    const Segment& seg = segments_.front();
    const SimTime s = std::max(seg.start, cur_issue_);
    const SimTime e = std::min(seg.end, done);
    if (e > s) b.us[static_cast<std::size_t>(seg.phase)] = e - s;
  } else if (!segments_.empty()) {
    boundaries_.clear();
    for (const Segment& seg : segments_) {
      const SimTime s = std::max(seg.start, cur_issue_);
      const SimTime e = std::min(seg.end, done);
      if (e > s) {
        boundaries_.push_back(
            Boundary{s, static_cast<std::uint8_t>(seg.phase), +1});
        boundaries_.push_back(
            Boundary{e, static_cast<std::uint8_t>(seg.phase), -1});
      }
    }
    const auto before = [](const Boundary& x, const Boundary& y) {
      if (x.at != y.at) return x.at < y.at;
      if (x.phase != y.phase) return x.phase < y.phase;
      return x.delta < y.delta;
    };
    if (boundaries_.size() <= 16) {
      // Requests rarely span more than a few ops; straight insertion
      // beats std::sort's dispatch at these sizes.
      for (std::size_t i = 1; i < boundaries_.size(); ++i) {
        const Boundary key = boundaries_[i];
        std::size_t j = i;
        for (; j > 0 && before(key, boundaries_[j - 1]); --j)
          boundaries_[j] = boundaries_[j - 1];
        boundaries_[j] = key;
      }
    } else {
      std::sort(boundaries_.begin(), boundaries_.end(), before);
    }
    int active[kPhaseCount] = {};
    int active_total = 0;
    SimTime prev = 0.0;
    bool have_prev = false;
    for (const Boundary& ev : boundaries_) {
      if (have_prev && ev.at > prev && active_total > 0) {
        for (const Phase p : kPriority)
          if (active[static_cast<std::size_t>(p)] > 0) {
            b.us[static_cast<std::size_t>(p)] += ev.at - prev;
            break;
          }
      }
      active[ev.phase] += ev.delta;
      active_total += ev.delta;
      prev = ev.at;
      have_prev = true;
    }
  }

  // buffer_wait is the reconciled residual: whatever service time no flash
  // op covers. `a + (b - a)` is not guaranteed to equal `b` in IEEE
  // arithmetic, so nudge until the canonical fold reproduces the response
  // bit-exactly (converges in one or two steps; failure is counted and, in
  // audit mode, thrown -- the online end of the phase-sum invariant).
  constexpr std::size_t kBw = static_cast<std::size_t>(Phase::kBufferWait);
  for (int iter = 0; iter < 8; ++iter) {
    const double total = b.fold();
    if (total == response) break;
    b.us[kBw] += response - total;
  }
  if (b.fold() != response) {
    ++reconcile_failures_;
    if (config_.audit)
      throw std::logic_error(
          "forensics: phase fold does not reconcile with response time "
          "(request " +
          std::to_string(cur_id_) + ")");
  }

  // Histograms: per host-op kind, and per tenant. Zero-duration phases
  // contribute no sample (see the header comment): the common request has
  // two or three live phases, not eight.
  const auto k = static_cast<std::size_t>(kind);
  const bool kind_hists = registry_ && k < kind_hist_.size();
  TenantState& ten = tenant_state(cur_tenant_);
  ++ten.requests;
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    const double v = b.us[p];
    if (v == 0.0) continue;
    ten.phase_us[p] += v;
    if (kind_hists) kind_hist_[k][p]->add(v);
    if (ten.hist[p]) ten.hist[p]->add(v);
  }

  // Exemplar candidacy: global top-K and the tenant's own bounded set.
  // Probe on (response, id) alone before materializing the payload.
  const auto beats_front = [&](const std::vector<Exemplar>& heap) {
    if (heap.size() < config_.top_k) return true;
    const Exemplar& front = heap.front();
    if (front.response != response) return front.response < response;
    return front.id > cur_id_;
  };
  const bool global_candidate = beats_front(heap_);
  const bool tenant_candidate = beats_front(ten.heap);
  if (global_candidate || tenant_candidate) {
    Exemplar ex;
    ex.id = cur_id_;
    ex.tenant = cur_tenant_;
    ex.kind = kind;
    ex.arrival = cur_arrival_;
    ex.issue = cur_issue_;
    ex.done = done;
    ex.response = response;
    ex.phases = b;
    ex.chains.assign(chain_str_.begin(), chain_str_.begin() + chain_count_);
    ex.chains_dropped = chains_dropped_;
    ex.blocks = blocks_;
    ex.blocks_touched = blocks_touched_;
    if (global_candidate) offer(heap_, config_.top_k, ex);
    if (tenant_candidate) offer(ten.heap, config_.top_k, ex);
  }

  // Blame window bookkeeping: the window retains only its slowest
  // ceil(1%) (bounded heap, same extremeness order as the exemplars), so
  // the usual outcome is one rejected comparison.
  if (config_.window_requests > 0) {
    if (window_count_ == 0) window_start_ = cur_arrival_;
    ++window_count_;
    window_end_ = std::max(window_end_, done);
    const auto more_extreme = [](const WindowEntry& x, const WindowEntry& y) {
      if (x.response != y.response) return x.response > y.response;
      return x.id < y.id;  // min-heap on extremeness: front least extreme
    };
    if (window_.size() < window_tail_cap_) {
      window_.push_back(WindowEntry{cur_id_, response, b});
      std::push_heap(window_.begin(), window_.end(), more_extreme);
    } else {
      const WindowEntry& front = window_.front();
      if (front.response < response ||
          (front.response == response && front.id > cur_id_)) {
        std::pop_heap(window_.begin(), window_.end(), more_extreme);
        window_.back() = WindowEntry{cur_id_, response, b};
        std::push_heap(window_.begin(), window_.end(), more_extreme);
      }
    }
    if (window_count_ >= config_.window_requests) close_window();
  }
}

void ForensicsCollector::close_window() {
  if (window_count_ == 0) return;
  // Sort the retained tail candidates by (response desc, id asc): the
  // retained set is the window's slowest min(n, cap) under that total
  // order, so the slowest ceil(1%) -- the tail set -- is its prefix and
  // p99/p999 read off the same order; the whole row is integer-defined
  // and byte-stable.
  std::sort(window_.begin(), window_.end(),
            [](const WindowEntry& a, const WindowEntry& b) {
              if (a.response != b.response) return a.response > b.response;
              return a.id < b.id;
            });
  const std::size_t n = static_cast<std::size_t>(window_count_);
  const std::size_t tail99 = (n + 99) / 100;
  const std::size_t tail999 = (n + 999) / 1000;
  std::array<double, kPhaseCount> tail{};
  for (std::size_t i = 0; i < tail99; ++i)
    for (std::size_t p = 0; p < kPhaseCount; ++p)
      tail[p] += window_[i].phases.us[p];

  char start_s[32], end_s[32], p99_s[32], p999_s[32];
  fmt_time(start_s, sizeof start_s, window_start_);
  fmt_time(end_s, sizeof end_s, window_end_);
  fmt_time(p99_s, sizeof p99_s, window_[tail99 - 1].response);
  fmt_time(p999_s, sizeof p999_s, window_[tail999 - 1].response);
  char phases[kLineCap / 2];
  fmt_phases(phases, sizeof phases, tail);
  char buf[kLineCap];
  std::snprintf(buf, sizeof buf,
                "{\"t\":\"blame\",\"window\":%llu,\"start_us\":%s,"
                "\"end_us\":%s,\"requests\":%llu,\"p99_us\":%s,"
                "\"p999_us\":%s,\"tail_requests\":%llu,\"tail\":{%s}}",
                static_cast<unsigned long long>(windows_), start_s, end_s,
                static_cast<unsigned long long>(n), p99_s, p999_s,
                static_cast<unsigned long long>(tail99), phases);
  write_line(buf);
  ++windows_;
  window_.clear();
  window_count_ = 0;
  window_end_ = 0.0;
}

void ForensicsCollector::write_exemplar(const Exemplar& ex,
                                        std::uint32_t rank) {
  char arrival_s[32], issue_s[32], done_s[32], resp_s[32], svc_s[32];
  fmt_time(arrival_s, sizeof arrival_s, ex.arrival);
  fmt_time(issue_s, sizeof issue_s, ex.issue);
  fmt_time(done_s, sizeof done_s, ex.done);
  fmt_time(resp_s, sizeof resp_s, ex.response);
  fmt_time(svc_s, sizeof svc_s, ex.done - ex.issue);
  char phases[kLineCap / 2];
  fmt_phases(phases, sizeof phases, ex.phases.us);

  std::string chains;
  for (const std::string& c : ex.chains) {
    if (!chains.empty()) chains += ',';
    chains += '"';
    chains += c;
    chains += '"';
  }
  std::string blocks;
  for (const auto& bl : ex.blocks) {
    char one[32];
    std::snprintf(one, sizeof one, "%s\"%u:%u\"", blocks.empty() ? "" : ",",
                  bl.first, bl.second);
    blocks += one;
  }

  char buf[kLineCap];
  std::snprintf(buf, sizeof buf,
                "{\"t\":\"ex\",\"rank\":%u,\"req\":%u,\"tenant\":%u,"
                "\"op\":\"%s\",\"arrival_us\":%s,\"issue_us\":%s,"
                "\"done_us\":%s,\"response_us\":%s,\"service_us\":%s,"
                "\"phases\":{%s},\"chains\":[%s],\"chains_dropped\":%u,"
                "\"blocks\":[%s],\"blocks_touched\":%llu}",
                rank, ex.id, ex.tenant, op_name(ex.kind), arrival_s, issue_s,
                done_s, resp_s, svc_s, phases, chains.c_str(),
                ex.chains_dropped, blocks.c_str(),
                static_cast<unsigned long long>(ex.blocks_touched));
  write_line(buf);
}

std::vector<TenantBlame> ForensicsCollector::tenant_blame() const {
  std::vector<TenantBlame> out;
  out.reserve(tenants_.size());
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    const TenantState& t = tenants_[i];
    TenantBlame blame;
    blame.tenant = static_cast<std::uint32_t>(i);
    blame.requests = t.requests;
    blame.phase_us = t.phase_us;
    blame.tail_requests = t.heap.size();
    // Deterministic tail sums regardless of heap layout: fold in
    // (response desc, id asc) order.
    std::vector<const Exemplar*> ordered;
    ordered.reserve(t.heap.size());
    for (const Exemplar& ex : t.heap) ordered.push_back(&ex);
    std::sort(ordered.begin(), ordered.end(),
              [](const Exemplar* a, const Exemplar* b) {
                return less_extreme(*b, *a);
              });
    for (const Exemplar* ex : ordered) {
      for (std::size_t p = 0; p < kPhaseCount; ++p)
        blame.tail_phase_us[p] += ex->phases.us[p];
      blame.worst_response_us =
          std::max(blame.worst_response_us, ex->response);
    }
    out.push_back(std::move(blame));
  }
  return out;
}

void ForensicsCollector::finish() {
  if (finished_) return;
  close_window();

  // Exemplars, slowest first, rank 1-based; ties on response break toward
  // the smaller request id (same order the heap was pruned under, so the
  // retained set + this sort are schedule-independent).
  std::sort(heap_.begin(), heap_.end(), [](const Exemplar& a,
                                           const Exemplar& b) {
    return less_extreme(b, a);
  });
  for (std::size_t i = 0; i < heap_.size(); ++i)
    write_exemplar(heap_[i], static_cast<std::uint32_t>(i + 1));

  // Per-tenant blame lines, only on genuinely multi-tenant streams (the
  // single-tenant byte format stays free of them).
  if (tenants_.size() > 1) {
    const std::vector<TenantBlame> blames = tenant_blame();
    for (const TenantBlame& t : blames) {
      char totals[kLineCap / 2], tail[kLineCap / 2], worst_s[32];
      fmt_phases(totals, sizeof totals, t.phase_us);
      fmt_phases(tail, sizeof tail, t.tail_phase_us);
      fmt_time(worst_s, sizeof worst_s, t.worst_response_us);
      char buf[kLineCap];
      std::snprintf(buf, sizeof buf,
                    "{\"t\":\"tnt\",\"tenant\":%u,\"requests\":%llu,"
                    "\"phases\":{%s},\"tail_requests\":%llu,\"tail\":{%s},"
                    "\"worst_response_us\":%s}",
                    t.tenant, static_cast<unsigned long long>(t.requests),
                    totals, static_cast<unsigned long long>(t.tail_requests),
                    tail, worst_s);
      write_line(buf);
    }
  }

  char buf[kLineCap];
  std::snprintf(
      buf, sizeof buf,
      "{\"t\":\"end\",\"requests\":%llu,\"exemplars\":%llu,"
      "\"truncated\":%llu,\"windows\":%llu,\"reconcile_failures\":%llu}",
      static_cast<unsigned long long>(requests_),
      static_cast<unsigned long long>(heap_.size()),
      static_cast<unsigned long long>(truncated()),
      static_cast<unsigned long long>(windows_),
      static_cast<unsigned long long>(reconcile_failures_));
  write_line(buf);
  os_.flush();
  finished_ = true;
}

void ForensicsCollector::write_line(const char* buf) { os_ << buf << '\n'; }

void ForensicsCollector::save_exemplar(util::StateWriter& w,
                                       const Exemplar& ex) const {
  w.u32(ex.id);
  w.u32(ex.tenant);
  w.u8(static_cast<std::uint8_t>(ex.kind));
  w.f64(ex.arrival);
  w.f64(ex.issue);
  w.f64(ex.done);
  w.f64(ex.response);
  w.raw(ex.phases.us.data(), sizeof(double) * kPhaseCount);
  w.u64(ex.chains.size());
  for (const std::string& c : ex.chains) w.str(c);
  w.u32(ex.chains_dropped);
  w.pair_vec(ex.blocks);
  w.u64(ex.blocks_touched);
}

ForensicsCollector::Exemplar ForensicsCollector::load_exemplar(
    util::StateReader& r) const {
  Exemplar ex;
  ex.id = r.u32();
  ex.tenant = static_cast<std::uint16_t>(r.u32());
  ex.kind = static_cast<OpKind>(r.u8());
  ex.arrival = r.f64();
  ex.issue = r.f64();
  ex.done = r.f64();
  ex.response = r.f64();
  r.raw(ex.phases.us.data(), sizeof(double) * kPhaseCount);
  const std::uint64_t n_chains = r.u64();
  ex.chains.reserve(n_chains);
  for (std::uint64_t i = 0; i < n_chains; ++i) ex.chains.push_back(r.str());
  ex.chains_dropped = r.u32();
  r.pair_vec(ex.blocks);
  ex.blocks_touched = r.u64();
  return ex;
}

void ForensicsCollector::save_state(util::StateWriter& w) const {
  if (open_)
    throw std::runtime_error("ForensicsCollector::save_state: open request");
  w.tag("FRNS");
  w.u32(config_.top_k);
  w.u32(config_.window_requests);
  w.u64(requests_);
  w.u64(windows_);
  w.u64(reconcile_failures_);
  w.u64(heap_.size());
  for (const Exemplar& ex : heap_) save_exemplar(w, ex);
  w.pod_vec(window_);
  w.u64(window_count_);
  w.f64(window_start_);
  w.f64(window_end_);
  w.u64(tenants_.size());
  for (const TenantState& t : tenants_) {
    w.u64(t.requests);
    w.raw(t.phase_us.data(), sizeof(double) * kPhaseCount);
    w.u64(t.heap.size());
    for (const Exemplar& ex : t.heap) save_exemplar(w, ex);
  }
}

void ForensicsCollector::load_state(util::StateReader& r) {
  r.tag("FRNS");
  if (r.u32() != config_.top_k || r.u32() != config_.window_requests)
    throw std::runtime_error(
        "ForensicsCollector::load_state: config mismatch");
  requests_ = r.u64();
  windows_ = r.u64();
  reconcile_failures_ = r.u64();
  heap_.clear();
  const std::uint64_t n_heap = r.u64();
  for (std::uint64_t i = 0; i < n_heap; ++i)
    heap_.push_back(load_exemplar(r));
  r.pod_vec(window_);
  window_count_ = r.u64();
  window_start_ = r.f64();
  window_end_ = r.f64();
  const std::uint64_t n_tenants = r.u64();
  tenants_.clear();
  for (std::uint64_t i = 0; i < n_tenants; ++i) {
    // tenant_state() lazily re-binds the per-tenant histogram family when
    // configured -- the registry restored them by name already, so the
    // bind resolves to the loaded histograms.
    TenantState& t = tenant_state(static_cast<std::uint16_t>(i));
    t.requests = r.u64();
    r.raw(t.phase_us.data(), sizeof(double) * kPhaseCount);
    t.heap.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t j = 0; j < n; ++j) t.heap.push_back(load_exemplar(r));
  }
  open_ = false;
  finished_ = false;
}

}  // namespace esp::telemetry
