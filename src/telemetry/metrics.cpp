#include "telemetry/metrics.h"

namespace esp::telemetry {

Counter& MetricsRegistry::counter(const std::string& name) {
  return counters_[name];
}

void MetricsRegistry::bind_counter(const std::string& name,
                                   const std::uint64_t* source) {
  bound_[name] = source;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return gauges_[name];
}

util::Histogram& MetricsRegistry::histogram(const std::string& name, double lo,
                                            double hi, std::size_t buckets) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_
      .emplace(std::piecewise_construct, std::forward_as_tuple(name),
               std::forward_as_tuple(lo, hi, buckets))
      .first->second;
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name,
                                             std::uint64_t fallback) const {
  if (const auto it = counters_.find(name); it != counters_.end())
    return it->second.value();
  if (const auto it = bound_.find(name); it != bound_.end())
    return *it->second;
  return fallback;
}

double MetricsRegistry::gauge_value(const std::string& name,
                                    double fallback) const {
  const auto it = gauges_.find(name);
  return it != gauges_.end() ? it->second.value() : fallback;
}

const util::Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  const auto it = histograms_.find(name);
  return it != histograms_.end() ? &it->second : nullptr;
}

void MetricsRegistry::visit_counters(
    const std::function<void(const std::string&, std::uint64_t)>& fn) const {
  // Two ordered maps, merged so the visit order stays globally
  // name-sorted regardless of how each metric is stored.
  auto own = counters_.begin();
  auto ext = bound_.begin();
  while (own != counters_.end() || ext != bound_.end()) {
    const bool take_own =
        ext == bound_.end() ||
        (own != counters_.end() && own->first <= ext->first);
    if (take_own) {
      fn(own->first, own->second.value());
      ++own;
    } else {
      fn(ext->first, *ext->second);
      ++ext;
    }
  }
}

void MetricsRegistry::visit_gauges(
    const std::function<void(const std::string&, double)>& fn) const {
  for (const auto& [name, gauge] : gauges_) fn(name, gauge.value());
}

void MetricsRegistry::visit_histograms(
    const std::function<void(const std::string&, const util::Histogram&)>& fn)
    const {
  for (const auto& [name, hist] : histograms_) fn(name, hist);
}

void MetricsRegistry::materialize() {
  for (auto& [name, source] : bound_) counters_[name].inc(*source);
  bound_.clear();
  for (auto& [name, gauge] : gauges_) gauge.materialize();
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  other.visit_counters([this](const std::string& name, std::uint64_t value) {
    // A same-named binding on our side must collapse into the owned
    // counter first, or exports would list the name twice.
    if (const auto b = bound_.find(name); b != bound_.end()) {
      counters_[name].inc(*b->second);
      bound_.erase(b);
    }
    counters_[name].inc(value);
  });
  other.visit_gauges([this](const std::string& name, double value) {
    Gauge& g = gauges_[name];
    g.set((g.has_provider() ? 0.0 : g.value()) + value);
  });
  other.visit_histograms(
      [this](const std::string& name, const util::Histogram& hist) {
        const auto it = histograms_.find(name);
        if (it == histograms_.end()) {
          histograms_.emplace(name, hist);
          return;
        }
        it->second.merge(hist);  // shape mismatch leaves ours unchanged
      });
}

void MetricsRegistry::reset() {
  // Zero in place rather than clearing: references handed out by
  // counter()/gauge()/histogram() must stay valid across a reset. Only the
  // external bindings are dropped.
  for (auto& [name, counter] : counters_) counter.reset();
  bound_.clear();
  for (auto& [name, gauge] : gauges_) gauge.set(0.0);
  for (auto& [name, histogram] : histograms_) histogram.reset();
}

void MetricsRegistry::save_state(util::StateWriter& w) const {
  w.tag("MREG");
  w.u64(counters_.size());
  for (const auto& [name, counter] : counters_) {
    w.str(name);
    w.u64(counter.value());
  }
  std::uint64_t plain_gauges = 0;
  for (const auto& [name, gauge] : gauges_)
    if (!gauge.has_provider()) ++plain_gauges;
  w.u64(plain_gauges);
  for (const auto& [name, gauge] : gauges_) {
    if (gauge.has_provider()) continue;
    w.str(name);
    w.f64(gauge.value());
  }
  w.u64(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    w.str(name);
    // Shape ahead of the payload so load can find-or-create before the
    // shape-checked Histogram::load_state runs.
    w.f64(hist.lo());
    w.f64(hist.hi());
    w.u64(hist.bucket_count());
    hist.save_state(w);
  }
}

void MetricsRegistry::load_state(util::StateReader& r) {
  r.tag("MREG");
  const std::uint64_t n_counters = r.u64();
  for (std::uint64_t i = 0; i < n_counters; ++i) {
    const std::string name = r.str();
    const std::uint64_t value = r.u64();
    Counter& c = counters_[name];
    c.reset();
    c.inc(value);
  }
  const std::uint64_t n_gauges = r.u64();
  for (std::uint64_t i = 0; i < n_gauges; ++i) {
    const std::string name = r.str();
    const double value = r.f64();
    // A provider re-registered before load wins: it reads live component
    // state the components themselves restored.
    Gauge& g = gauges_[name];
    if (!g.has_provider()) g.set(value);
  }
  const std::uint64_t n_hists = r.u64();
  for (std::uint64_t i = 0; i < n_hists; ++i) {
    const std::string name = r.str();
    const double lo = r.f64();
    const double hi = r.f64();
    const std::uint64_t buckets = r.u64();
    histogram(name, lo, hi, static_cast<std::size_t>(buckets)).load_state(r);
  }
}

}  // namespace esp::telemetry
