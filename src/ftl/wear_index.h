// Lazy P/E-cycle-ordered index of wear-leveling candidates.
//
// The static wear levelers need "the least-worn sealed block this pool
// owns" on every check. Scanning for it costs O(device blocks) per
// invocation -- fine on the paper's 4,096-block toy device, prohibitive at
// production geometry (64k+ blocks). This index keeps candidates in a
// min-heap keyed on (pe_cycles, block index) instead:
//
//   * a block is pushed when it becomes a candidate (sealed / retired from
//     active duty) with its P/E count at that moment -- the count cannot
//     change while the block stays owned, because only an erase advances
//     it and an erase always returns the block to the allocator;
//   * entries are never removed eagerly. peek() lazily pops entries whose
//     block no longer qualifies (caller-supplied freshness predicate) and
//     returns the first live minimum WITHOUT consuming it, so a declined
//     wear-level check (gap below threshold) keeps its candidate.
//
// Ordering is lexicographic on (pe, index), which reproduces the linear
// scan's tie-break exactly: among equally-cold blocks the lowest block
// index wins. Duplicate pushes of the same block are harmless -- both
// entries carry the same key and the same freshness verdict.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <utility>
#include <vector>

#include "util/serialize.h"

namespace esp::ftl {

class WearIndex {
 public:
  struct Entry {
    std::uint32_t pe = 0;
    std::size_t idx = 0;
  };

  /// Registers `idx` as a candidate with P/E count `pe`.
  void push(std::uint32_t pe, std::size_t idx) { heap_.emplace(pe, idx); }

  /// Returns the coldest live candidate without removing it; lazily
  /// discards stale entries (fresh(pe, idx) == false) from the top.
  /// nullopt when no live candidate remains.
  template <typename Fresh>
  std::optional<Entry> peek(Fresh&& fresh) {
    while (!heap_.empty()) {
      const auto [pe, idx] = heap_.top();
      if (fresh(pe, idx)) return Entry{pe, idx};
      heap_.pop();
    }
    return std::nullopt;
  }

  /// Entries currently queued, stale ones included (introspection/tests).
  std::size_t size() const { return heap_.size(); }

  void clear() { heap_ = {}; }

  /// Snapshot support: the exact heap array, stale entries included, so a
  /// restored index yields identical peek()/pop sequences.
  void save_state(util::StateWriter& w) const {
    w.tag("WIDX");
    w.pair_vec(util::heap_container(heap_));
  }
  void load_state(util::StateReader& r) {
    r.tag("WIDX");
    r.pair_vec(util::heap_container(heap_));
  }

 private:
  std::priority_queue<std::pair<std::uint32_t, std::size_t>,
                      std::vector<std::pair<std::uint32_t, std::size_t>>,
                      std::greater<>>
      heap_;
};

}  // namespace esp::ftl
