#include "ftl/sector_log_ftl.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "telemetry/metrics.h"

namespace esp::ftl {
namespace {

std::uint64_t log_quota(const nand::Geometry& geo, double fraction) {
  const auto quota = static_cast<std::uint64_t>(
      std::llround(fraction * static_cast<double>(geo.total_blocks())));
  return std::max<std::uint64_t>(quota, geo.total_chips());
}

}  // namespace

SectorLogFtl::SectorLogFtl(nand::NandDevice& dev, const Config& config)
    : dev_(dev),
      config_(config),
      geo_(dev.geometry()),
      codec_(geo_),
      allocator_(geo_),
      pool_data_(dev, allocator_,
                 FullPagePool::Config{/*quota_blocks=*/~0ull,
                                      config.gc_reserve_blocks,
                                      config.use_copyback,
                                      config.reference_scan_maintenance},
                 stats_,
                 [this](std::uint64_t lpn, std::uint64_t new_lin) {
                   l2p_[lpn] = new_lin;
                 }),
      pool_log_(dev, allocator_,
                FinePool::Config{log_quota(geo_, config.log_region_fraction),
                                 config.gc_reserve_blocks,
                                 config.reference_scan_maintenance},
                stats_,
                [this](std::uint64_t sector, std::uint64_t new_lin) {
                  log_map_[sector] = new_lin;
                },
                [this](std::span<const SectorWrite> batch, SimTime now) {
                  return merge_batch(batch, now);
                }),
      buffer_(config.buffer_sectors) {
  if (config_.logical_sectors == 0)
    throw std::invalid_argument("SectorLogFtl: logical_sectors must be > 0");
  if (config_.log_region_fraction <= 0.0 ||
      config_.log_region_fraction >= 1.0)
    throw std::invalid_argument(
        "SectorLogFtl: log_region_fraction must be in (0, 1)");
  const std::uint32_t subs = geo_.subpages_per_page;
  const std::uint64_t lpns = (config_.logical_sectors + subs - 1) / subs;
  const std::uint64_t log_pages =
      log_quota(geo_, config.log_region_fraction) * geo_.pages_per_block;
  if (lpns + log_pages > geo_.total_pages())
    throw std::invalid_argument(
        "SectorLogFtl: logical space plus log quota exceeds capacity");
  l2p_.assign(lpns, nand::kUnmapped);
  version_.assign(config_.logical_sectors, 0);
}

void SectorLogFtl::check_range(std::uint64_t sector,
                               std::uint32_t count) const {
  if (count == 0 || sector + count > config_.logical_sectors)
    throw std::out_of_range(
        "SectorLogFtl: sector range outside logical space");
}

void SectorLogFtl::drop_log_copy(std::uint64_t sector) {
  const auto it = log_map_.find(sector);
  if (it == log_map_.end()) return;
  pool_log_.invalidate(it->second);
  log_map_.erase(it);
}

SimTime SectorLogFtl::write_full_lpn(std::uint64_t lpn,
                                     const BufferedSector* group,
                                     SimTime now) {
  const std::uint32_t subs = geo_.subpages_per_page;
  std::vector<std::uint64_t> tokens(subs);
  std::uint64_t small_sectors = 0;
  for (std::uint32_t s = 0; s < subs; ++s) {
    drop_log_copy(group[s].sector);
    tokens[s] = group[s].token;
    if (group[s].small) ++small_sectors;
  }
  if (l2p_[lpn] != nand::kUnmapped) {
    pool_data_.invalidate(l2p_[lpn]);
    l2p_[lpn] = nand::kUnmapped;
  }
  const auto [new_lin, done] = pool_data_.write_page(lpn, tokens, now);
  l2p_[lpn] = new_lin;
  stats_.small_service_flash_bytes += small_sectors * geo_.subpage_bytes();
  return done;
}

SimTime SectorLogFtl::append_to_log(std::span<const BufferedSector> group,
                                    SimTime now) {
  // One full-page program carrying this (<= Nsub) group -- logical-level
  // subpage granularity, physical-level full-page cost.
  std::vector<SectorWrite> writes;
  writes.reserve(group.size());
  std::uint64_t small_in_group = 0;
  for (const BufferedSector& bs : group) {
    drop_log_copy(bs.sector);
    writes.push_back(SectorWrite{bs.sector, bs.token});
    if (bs.small) ++small_in_group;
  }
  const SimTime done = pool_log_.write_group(writes, now);
  stats_.small_service_flash_bytes +=
      small_in_group * (geo_.page_bytes / group.size());
  return done;
}

SimTime SectorLogFtl::merge_batch(std::span<const SectorWrite> batch,
                                  SimTime now) {
  // Log cleaning (the sector-log "merge"): fold live log sectors into
  // their logical pages in the data region, one RMW per page.
  std::vector<SectorWrite> sorted(batch.begin(), batch.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const SectorWrite& a, const SectorWrite& b) {
              return a.sector < b.sector;
            });
  const std::uint32_t subs = geo_.subpages_per_page;
  SimTime done = now;
  std::size_t i = 0;
  while (i < sorted.size()) {
    const std::uint64_t lpn = sorted[i].sector / subs;
    std::size_t j = i;
    while (j < sorted.size() && sorted[j].sector / subs == lpn) ++j;

    std::vector<std::uint64_t> tokens(subs, 0);
    SimTime t = now;
    const bool merges_old_page = l2p_[lpn] != nand::kUnmapped;
    if (merges_old_page) {
      const auto read = dev_.read_page(codec_.decode_page(l2p_[lpn]), t);
      ++stats_.flash_reads;
      ++stats_.rmw_ops;
      for (std::uint32_t s = 0; s < subs; ++s) {
        tokens[s] = read.token[s];
        if (read.status[s] == nand::ReadStatus::kCorrupted ||
            read.status[s] == nand::ReadStatus::kUncorrectable)
          ++stats_.read_failures;
      }
      t = read.done;
      pool_data_.invalidate(l2p_[lpn]);
      l2p_[lpn] = nand::kUnmapped;
    }
    for (std::size_t k = i; k < j; ++k) {
      log_map_.erase(sorted[k].sector);
      tokens[sorted[k].sector % subs] = sorted[k].token;
    }
    const auto [new_lin, page_done] = pool_data_.write_page(lpn, tokens, t);
    l2p_[lpn] = new_lin;
    stats_.small_extra_flash_bytes += geo_.page_bytes;
    if (sink_ && merges_old_page && sink_->wants_op(telemetry::OpKind::kRmw))
      sink_->record_op({telemetry::OpKind::kRmw, now, page_done,
                        static_cast<std::uint64_t>(j - i)});
    done = std::max(done, page_done);
    i = j;
  }
  return done;
}

SimTime SectorLogFtl::flush_run(const std::vector<BufferedSector>& run,
                                SimTime now) {
  // Placement mirrors subFTL: complete logical pages to the data region,
  // the rest appended to the log.
  const std::uint32_t subs = geo_.subpages_per_page;
  SimTime done = now;
  std::size_t i = 0;
  while (i < run.size()) {
    const std::uint64_t lpn = run[i].sector / subs;
    std::size_t j = i;
    while (j < run.size() && run[j].sector / subs == lpn) ++j;
    if (j - i == subs) {
      done = std::max(done, write_full_lpn(lpn, &run[i], now));
    } else {
      done = std::max(
          done, append_to_log(
                    std::span<const BufferedSector>(&run[i], j - i), now));
    }
    i = j;
  }
  return done;
}

IoResult SectorLogFtl::write(std::uint64_t sector, std::uint32_t count,
                             bool sync, SimTime now) {
  check_range(sector, count);
  if (config_.wl_check_interval > 0 &&
      ++writes_since_wl_ >= config_.wl_check_interval) {
    writes_since_wl_ = 0;
    wl_toggle_ = !wl_toggle_;
    now = wl_toggle_
              ? pool_data_.static_wear_level(now, config_.wl_pe_threshold)
              : pool_log_.static_wear_level(now, config_.wl_pe_threshold);
  }
  ++stats_.host_write_requests;
  stats_.host_write_sectors += count;
  const bool small = count < geo_.subpages_per_page;
  if (small) {
    ++stats_.small_write_requests;
    stats_.small_write_bytes +=
        static_cast<std::uint64_t>(count) * geo_.subpage_bytes();
  }

  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint64_t s = sector + i;
    if (buffer_.insert(s, make_token(s, ++version_[s]), small))
      ++stats_.buffer_hits;
  }

  SimTime done = now + config_.buffer_insert_us;
  if (sync) {
    const auto run =
        buffer_.extract_page_group(sector, geo_.subpages_per_page);
    done = std::max(done, flush_run(run, now));
  }
  while (buffer_.over_capacity()) {
    const auto victim =
        buffer_.extract_oldest_page_group(geo_.subpages_per_page);
    if (victim.empty()) break;
    done = std::max(done, flush_run(victim, now));
  }
  return IoResult{done, true};
}

IoResult SectorLogFtl::read(std::uint64_t sector, std::uint32_t count,
                            SimTime now, std::vector<std::uint64_t>* tokens) {
  check_range(sector, count);
  ++stats_.host_read_requests;
  stats_.host_read_sectors += count;
  if (tokens) tokens->assign(count, 0);

  SimTime done = now;
  bool ok = true;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint64_t s = sector + i;
    std::uint64_t token = 0;
    if (buffer_.lookup(s, &token)) {
      ++stats_.buffer_hits;
    } else if (const auto it = log_map_.find(s); it != log_map_.end()) {
      const auto ack = dev_.read_subpage(codec_.decode_subpage(it->second),
                                         now);
      ++stats_.flash_reads;
      token = ack.token;
      if (ack.status != nand::ReadStatus::kOk) {
        ok = false;
        ++stats_.read_failures;
      }
      done = std::max(done, ack.done);
    } else {
      const std::uint64_t lpn = s / geo_.subpages_per_page;
      if (l2p_[lpn] != nand::kUnmapped) {
        const auto read = dev_.read_page(codec_.decode_page(l2p_[lpn]), now);
        ++stats_.flash_reads;
        const auto slot =
            static_cast<std::uint32_t>(s % geo_.subpages_per_page);
        token = read.token[slot];
        if (read.status[slot] == nand::ReadStatus::kCorrupted ||
            read.status[slot] == nand::ReadStatus::kUncorrectable) {
          ok = false;
          ++stats_.read_failures;
        }
        done = std::max(done, read.done);
      }
    }
    if (tokens) (*tokens)[i] = token;
  }
  return IoResult{done, ok};
}

IoResult SectorLogFtl::flush(SimTime now) {
  // Explicit host flush: programs issued by the drain (and any GC they
  // trigger) attribute to the flush, not to the host write path.
  const telemetry::CauseScope cause(sink_, telemetry::Cause::kFlush,
                                    buffer_.size(), now);
  SimTime done = now;
  while (!buffer_.empty()) {
    const auto run =
        buffer_.extract_oldest_page_group(geo_.subpages_per_page);
    if (run.empty()) break;
    done = std::max(done, flush_run(run, now));
  }
  return IoResult{done, true};
}

void SectorLogFtl::trim(std::uint64_t sector, std::uint32_t count) {
  check_range(sector, count);
  // Page-aligned contract (see Ftl::trim): partial edges keep their latest
  // data, including buffered copies that may be the newest version's only
  // home; only whole pages drop buffer + log + data-region state.
  const std::uint32_t subs = geo_.subpages_per_page;
  const std::uint64_t first_lpn = (sector + subs - 1) / subs;
  const std::uint64_t end_lpn = (sector + count) / subs;
  for (std::uint64_t lpn = first_lpn; lpn < end_lpn; ++lpn) {
    for (std::uint32_t s = 0; s < subs; ++s) {
      buffer_.erase(lpn * subs + s);
      drop_log_copy(lpn * subs + s);
    }
    if (l2p_[lpn] != nand::kUnmapped) {
      pool_data_.invalidate(l2p_[lpn]);
      l2p_[lpn] = nand::kUnmapped;
    }
  }
}

std::uint64_t SectorLogFtl::mapping_memory_bytes() const {
  // Coarse table plus the fine log map (modeled 16 bytes/entry).
  return l2p_.size() * sizeof(std::uint32_t) + log_map_.size() * 16;
}

void SectorLogFtl::set_telemetry(telemetry::Sink* sink) {
  sink_ = sink;
  pool_data_.set_telemetry(sink);
  pool_log_.set_telemetry(sink);
  if (!sink) return;
  telemetry::MetricsRegistry& reg = sink->registry();
  bind_stats(reg, name(), stats_);
  reg.gauge(name() + "/region_blocks").set_provider([this] {
    return static_cast<double>(pool_log_.blocks_in_use());
  });
  reg.gauge(name() + "/region_valid_sectors").set_provider([this] {
    return static_cast<double>(pool_log_.valid_sectors());
  });
  reg.gauge(name() + "/fullpage_blocks").set_provider([this] {
    return static_cast<double>(pool_data_.blocks_in_use());
  });
  reg.gauge(name() + "/mapping_memory_bytes").set_provider([this] {
    return static_cast<double>(mapping_memory_bytes());
  });
}

void SectorLogFtl::save_state(util::StateWriter& w) const {
  w.tag("SLOG");
  save_stats(w, stats_);
  allocator_.save_state(w);
  pool_data_.save_state(w);
  pool_log_.save_state(w);
  buffer_.save_state(w);
  w.pod_vec(l2p_);
  // The log map is only ever probed by key; sorted order makes the archive
  // canonical (see WriteBuffer::save_state).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> sorted(
      log_map_.begin(), log_map_.end());
  std::sort(sorted.begin(), sorted.end());
  w.pair_vec(sorted);
  w.pod_vec(version_);
  w.u32(writes_since_wl_);
  w.b(wl_toggle_);
}

void SectorLogFtl::load_state(util::StateReader& r) {
  r.tag("SLOG");
  load_stats(r, stats_);
  allocator_.load_state(r);
  pool_data_.load_state(r);
  pool_log_.load_state(r);
  buffer_.load_state(r);
  r.pod_vec(l2p_);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> sorted;
  r.pair_vec(sorted);
  log_map_.clear();
  log_map_.reserve(sorted.size());
  for (const auto& [sector, sub] : sorted) log_map_.emplace(sector, sub);
  r.pod_vec(version_);
  writes_since_wl_ = r.u32();
  wl_toggle_ = r.b();
}

}  // namespace esp::ftl
