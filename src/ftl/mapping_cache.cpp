#include "ftl/mapping_cache.h"

#include <stdexcept>

namespace esp::ftl {

MappingCache::MappingCache(std::size_t capacity_pages,
                           std::uint32_t entries_per_page)
    : capacity_(capacity_pages), entries_per_page_(entries_per_page) {
  if (capacity_ == 0 || entries_per_page_ == 0)
    throw std::invalid_argument("MappingCache: zero capacity or page size");
}

MappingCache::Access MappingCache::access(std::uint64_t entry_index,
                                          bool dirty) {
  const std::uint64_t page = entry_index / entries_per_page_;
  Access result;
  if (const auto it = index_.find(page); it != index_.end()) {
    result.hit = true;
    ++hits_;
    it->second->dirty |= dirty;
    lru_.splice(lru_.begin(), lru_, it->second);  // move to front
    return result;
  }
  ++misses_;
  if (lru_.size() >= capacity_) {
    const Line& victim = lru_.back();
    if (victim.dirty) {
      result.writeback = true;
      ++writebacks_;
    }
    index_.erase(victim.page);
    lru_.pop_back();
  }
  lru_.push_front(Line{page, dirty});
  index_[page] = lru_.begin();
  return result;
}

void MappingCache::reset_counters() {
  hits_ = 0;
  misses_ = 0;
  writebacks_ = 0;
}

}  // namespace esp::ftl
