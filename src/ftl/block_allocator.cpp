#include "ftl/block_allocator.h"

#include <stdexcept>

namespace esp::ftl {

BlockAllocator::BlockAllocator(const nand::Geometry& geo)
    : per_chip_(geo.total_chips()) {
  for (std::uint32_t chip = 0; chip < geo.total_chips(); ++chip)
    for (std::uint32_t blk = 0; blk < geo.blocks_per_chip; ++blk)
      per_chip_[chip].push(Entry{0, blk});
  total_free_ = static_cast<std::size_t>(geo.total_chips()) *
                geo.blocks_per_chip;
}

std::optional<std::uint32_t> BlockAllocator::alloc(std::uint32_t chip) {
  if (chip >= per_chip_.size())
    throw std::out_of_range("BlockAllocator::alloc: chip out of range");
  auto& heap = per_chip_[chip];
  if (heap.empty()) return std::nullopt;
  const std::uint32_t block = heap.top().block;
  heap.pop();
  --total_free_;
  return block;
}

void BlockAllocator::release(std::uint32_t chip, std::uint32_t block,
                             std::uint32_t pe_cycles) {
  if (chip >= per_chip_.size())
    throw std::out_of_range("BlockAllocator::release: chip out of range");
  per_chip_[chip].push(Entry{pe_cycles, block});
  ++total_free_;
}

std::size_t BlockAllocator::free_on_chip(std::uint32_t chip) const {
  if (chip >= per_chip_.size())
    throw std::out_of_range("BlockAllocator::free_on_chip: chip out of range");
  return per_chip_[chip].size();
}

void BlockAllocator::save_state(util::StateWriter& w) const {
  w.tag("ALOC");
  w.u64(per_chip_.size());
  for (const MinHeap& heap : per_chip_)
    w.pod_vec(util::heap_container(heap));
  w.u64(total_free_);
}

void BlockAllocator::load_state(util::StateReader& r) {
  r.tag("ALOC");
  if (r.u64() != per_chip_.size())
    throw std::runtime_error("BlockAllocator::load_state: chip count mismatch");
  for (MinHeap& heap : per_chip_)
    r.pod_vec(util::heap_container(heap));
  total_free_ = r.u64();
}

}  // namespace esp::ftl
