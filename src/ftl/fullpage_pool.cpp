#include "ftl/fullpage_pool.h"

#include <algorithm>
#include <stdexcept>

#include "util/logger.h"

namespace esp::ftl {

FullPagePool::FullPagePool(nand::NandDevice& dev, BlockAllocator& allocator,
                           const Config& config, FtlStats& stats,
                           RelocateFn relocate)
    : dev_(dev),
      allocator_(allocator),
      config_(config),
      stats_(stats),
      relocate_(std::move(relocate)),
      geo_(dev.geometry()),
      codec_(geo_),
      meta_(geo_.total_blocks()),
      owned_by_chip_(geo_.total_chips()),
      active_block_(geo_.total_chips()) {
  if (!relocate_)
    throw std::invalid_argument("FullPagePool: relocate callback required");
}

void FullPagePool::index_add(std::uint32_t chip, std::uint32_t block) {
  auto& owned = owned_by_chip_[chip];
  owned.insert(std::lower_bound(owned.begin(), owned.end(), block), block);
}

void FullPagePool::index_remove(std::uint32_t chip, std::uint32_t block) {
  auto& owned = owned_by_chip_[chip];
  const auto it = std::lower_bound(owned.begin(), owned.end(), block);
  if (it != owned.end() && *it == block) owned.erase(it);
}

void FullPagePool::retire_meta_arrays(BlockMeta& m) {
  auto& spare = spare_meta_.emplace_back();
  spare.lpn_of_page = std::move(m.lpn_of_page);
  spare.valid = std::move(m.valid);
}

void FullPagePool::init_meta_arrays(BlockMeta& m) {
  if (!spare_meta_.empty()) {
    auto& spare = spare_meta_.back();
    m.lpn_of_page = std::move(spare.lpn_of_page);
    m.valid = std::move(spare.valid);
    spare_meta_.pop_back();
  }
  m.lpn_of_page.assign(geo_.pages_per_block, nand::kUnmapped);
  m.valid.assign(geo_.pages_per_block, false);
}

bool FullPagePool::space_pressure() const {
  return allocator_.total_free() <= config_.reserve_free_blocks ||
         blocks_in_use_ >= config_.quota_blocks;
}

bool FullPagePool::ensure_active_on(std::uint32_t chip, SimTime now) {
  auto& active = active_block_[chip];
  if (active) {
    BlockMeta& m = meta_[block_index(chip, *active)];
    if (m.next_page < geo_.pages_per_block) return true;
    m.active = false;  // full: retire from active duty, becomes collectable
    push_victim_candidate(block_index(chip, *active));
    wear_index_.push(dev_.block(chip, *active).pe_cycles(),
                     block_index(chip, *active));
    active.reset();
  }
  const auto blk = allocator_.alloc(chip);
  if (!blk) return false;
  BlockMeta& m = meta_[block_index(chip, *blk)];
  m.owned = true;
  index_add(chip, *blk);
  m.active = true;
  m.next_page = 0;
  m.valid_count = 0;
  init_meta_arrays(m);
  active = *blk;
  ++blocks_in_use_;
  if (sink_)
    sink_->record_block({telemetry::BlockEventKind::kAllocated, chip, *blk,
                         "full", 0, 0, dev_.block(chip, *blk).pe_cycles(),
                         now});
  return true;
}

bool FullPagePool::ensure_active(std::uint32_t* chip_out, SimTime now) {
  // Round-robin over chips; open a fresh block when a chip's active block
  // is full or missing. Falls through to any chip with free blocks.
  for (std::uint32_t attempt = 0; attempt < geo_.total_chips(); ++attempt) {
    const std::uint32_t chip = (rr_chip_ + attempt) % geo_.total_chips();
    if (ensure_active_on(chip, now)) {
      *chip_out = chip;
      rr_chip_ = (chip + 1) % geo_.total_chips();
      return true;
    }
  }
  return false;
}

std::pair<std::uint64_t, SimTime> FullPagePool::write_page(
    std::uint64_t lpn, std::span<const std::uint64_t> tokens, SimTime now) {
  if (!in_gc_) now = maybe_gc(now);
  std::uint32_t chip = 0;
  if (!ensure_active(&chip, now))
    throw std::runtime_error(
        "FullPagePool: out of physical blocks (over-provisioning exhausted)");
  const std::uint32_t blk = *active_block_[chip];
  BlockMeta& m = meta_[block_index(chip, blk)];
  const std::uint32_t page = m.next_page++;

  const nand::PageAddr addr{chip, blk, page};
  const auto ack = dev_.program_full(addr, tokens, now);
  ++stats_.flash_prog_full;

  m.lpn_of_page[page] = lpn;
  m.valid[page] = true;
  ++m.valid_count;
  ++valid_pages_;
  return {codec_.encode_page(addr), ack.done};
}

void FullPagePool::invalidate(std::uint64_t page_lin) {
  const nand::PageAddr addr = codec_.decode_page(page_lin);
  BlockMeta& m = meta_[block_index(addr.chip, addr.block)];
  if (!m.owned || !m.valid[addr.page])
    throw std::logic_error("FullPagePool::invalidate: page not valid");
  m.valid[addr.page] = false;
  m.lpn_of_page[addr.page] = nand::kUnmapped;
  --m.valid_count;
  --valid_pages_;
  if (!m.active && m.next_page == geo_.pages_per_block)
    push_victim_candidate(block_index(addr.chip, addr.block));
}

void FullPagePool::push_victim_candidate(std::size_t idx) {
  victim_heap_.emplace(meta_[idx].valid_count, idx);
}

std::optional<std::size_t> FullPagePool::pop_victim() {
  while (!victim_heap_.empty()) {
    const auto [count, idx] = victim_heap_.top();
    victim_heap_.pop();
    const BlockMeta& m = meta_[idx];
    // Skip stale entries: block re-erased / re-opened / count changed
    // (a fresher entry with the smaller count is still in the heap).
    if (m.owned && !m.active && m.next_page == geo_.pages_per_block &&
        m.valid_count == count)
      return idx;
  }
  return std::nullopt;
}

SimTime FullPagePool::maybe_gc(SimTime now) {
  while (space_pressure() && blocks_in_use_ > 0) {
    const SimTime after = collect(now);
    if (after == now && space_pressure()) break;  // no reclaimable victim
    now = after;
  }
  return now;
}

SimTime FullPagePool::collect(SimTime now) {
  // Greedy victim: fully written, non-active block with fewest valid pages.
  const auto victim_idx = pop_victim();
  if (!victim_idx) return now;  // nothing collectable yet
  const std::uint32_t best_valid = meta_[*victim_idx].valid_count;
  if (best_valid == geo_.pages_per_block) {
    // Erasing a fully-valid block reclaims nothing: decline and let writes
    // consume the reserve until overwrites create a real victim (any
    // invalidation re-queues the block).
    return now;
  }

  ++stats_.gc_invocations;
  return collect_block(*victim_idx, now, /*for_wear_leveling=*/false);
}

SimTime FullPagePool::collect_block(std::size_t idx, SimTime now,
                                    bool for_wear_leveling) {
  const MaintenanceTimer timer(stats_, nullptr, &stats_.maint_gc_ns);
  const auto chip = static_cast<std::uint32_t>(idx / geo_.blocks_per_chip);
  const auto blk = static_cast<std::uint32_t>(idx % geo_.blocks_per_chip);
  const SimTime collect_start = now;
  std::uint64_t moved_sectors = 0;
  in_gc_ = true;
  // Copies and the final erase all attribute to this GC/WL episode.
  const telemetry::CauseScope cause(
      sink_,
      for_wear_leveling ? telemetry::Cause::kWearLevel
                        : telemetry::Cause::kGcCopy,
      idx, now);
  BlockMeta& victim = meta_[idx];
  for (std::uint32_t page = 0; page < geo_.pages_per_block; ++page) {
    if (!victim.valid[page]) continue;
    const std::uint64_t lpn = victim.lpn_of_page[page];
    const nand::PageAddr src{chip, blk, page};

    if (config_.use_copyback && ensure_active_on(chip, now) &&
        active_block_[chip] != blk) {
      // On-chip copy: no channel transfers in either direction.
      const std::uint32_t dst_blk = *active_block_[chip];
      BlockMeta& dst = meta_[block_index(chip, dst_blk)];
      const std::uint32_t dst_page = dst.next_page++;
      const nand::PageAddr dst_addr{chip, dst_blk, dst_page};
      const auto ack = dev_.copyback(src, dst_addr, now);
      ++stats_.flash_reads;
      ++stats_.flash_prog_full;
      victim.valid[page] = false;
      victim.lpn_of_page[page] = nand::kUnmapped;
      --victim.valid_count;
      dst.lpn_of_page[dst_page] = lpn;
      dst.valid[dst_page] = true;
      ++dst.valid_count;
      if (for_wear_leveling)
        stats_.wear_level_relocations += geo_.subpages_per_page;
      else
        stats_.gc_copy_sectors += geo_.subpages_per_page;
      moved_sectors += geo_.subpages_per_page;
      relocate_(lpn, codec_.encode_page(dst_addr));
      now = ack.done;
      continue;
    }

    const auto read = dev_.read_page(src, now);
    ++stats_.flash_reads;
    std::vector<std::uint64_t>& tokens = gc_tokens_;
    tokens.assign(geo_.subpages_per_page, 0);
    for (std::uint32_t s = 0; s < geo_.subpages_per_page; ++s) {
      tokens[s] = read.token[s];
      if (read.status[s] == nand::ReadStatus::kCorrupted ||
          read.status[s] == nand::ReadStatus::kUncorrectable)
        ++stats_.read_failures;
    }
    // Invalidate before rewriting so the copy's accounting stays balanced.
    victim.valid[page] = false;
    victim.lpn_of_page[page] = nand::kUnmapped;
    --victim.valid_count;
    --valid_pages_;
    const auto [new_lin, done] = write_page(lpn, tokens, read.done);
    if (for_wear_leveling)
      stats_.wear_level_relocations += geo_.subpages_per_page;
    else
      stats_.gc_copy_sectors += geo_.subpages_per_page;
    moved_sectors += geo_.subpages_per_page;
    relocate_(lpn, new_lin);
    now = done;
  }
  in_gc_ = false;

  const auto ack = dev_.erase_block(chip, blk, now);
  ++stats_.flash_erases;
  if (sink_) {
    const auto copy_kind = for_wear_leveling ? telemetry::OpKind::kWearLevel
                                             : telemetry::OpKind::kGcCopy;
    if (sink_->wants_op(copy_kind))
      sink_->record_op({copy_kind, collect_start, ack.done, moved_sectors});
    const std::uint32_t pe = dev_.block(chip, blk).pe_cycles();
    sink_->record_block({telemetry::BlockEventKind::kErased, chip, blk,
                         "full", 0, victim.valid_count, pe, ack.done});
    sink_->record_block({telemetry::BlockEventKind::kRetired, chip, blk,
                         "full", 0, 0, pe, ack.done});
  }
  ESP_LOG_DEBUG("%s collected full-page block chip=%u blk=%u moved=%llu",
                for_wear_leveling ? "wear-level" : "gc",
                static_cast<unsigned>(chip), static_cast<unsigned>(blk),
                static_cast<unsigned long long>(moved_sectors));
  victim.owned = false;
  index_remove(chip, blk);
  retire_meta_arrays(victim);
  --blocks_in_use_;
  allocator_.release(chip, blk, dev_.block(chip, blk).pe_cycles());
  return ack.done;
}

SimTime FullPagePool::static_wear_level(SimTime now,
                                        std::uint32_t pe_threshold) {
  const MaintenanceTimer timer(stats_, &stats_.maint_wear_level_calls,
                               &stats_.maint_wear_level_ns);
  // Least-worn sealed block owned by this pool vs. the most-worn block on
  // the device: a big gap means this block pins cold data on young flash.
  std::optional<std::size_t> coldest;
  std::uint32_t coldest_pe = ~0u;
  // Device-wide maximum is tracked monotonically at erase time; the coldest
  // candidate comes from the wear index (or, in reference mode, the
  // original full-device scan kept as the differential baseline).
  const std::uint32_t max_pe = dev_.max_pe_cycles();
  if (config_.reference_scan_maintenance) {
    for (std::uint32_t chip = 0; chip < geo_.total_chips(); ++chip) {
      for (std::uint32_t blk = 0; blk < geo_.blocks_per_chip; ++blk) {
        const std::size_t idx = block_index(chip, blk);
        const BlockMeta& m = meta_[idx];
        if (!m.owned || m.active || m.next_page < geo_.pages_per_block)
          continue;
        const std::uint32_t pe = dev_.block(chip, blk).pe_cycles();
        if (pe < coldest_pe) {
          coldest_pe = pe;
          coldest = idx;
        }
      }
    }
  } else {
    const auto top = wear_index_.peek([&](std::uint32_t pe, std::size_t idx) {
      const BlockMeta& m = meta_[idx];
      if (!m.owned || m.active || m.next_page < geo_.pages_per_block)
        return false;
      const auto chip = static_cast<std::uint32_t>(idx / geo_.blocks_per_chip);
      const auto blk = static_cast<std::uint32_t>(idx % geo_.blocks_per_chip);
      return dev_.block(chip, blk).pe_cycles() == pe;
    });
    if (top) {
      coldest = top->idx;
      coldest_pe = top->pe;
    }
  }
  if (!coldest || max_pe - coldest_pe <= pe_threshold) return now;
  if (allocator_.total_free() == 0) return now;  // no room to relocate into
  return collect_block(*coldest, now, /*for_wear_leveling=*/true);
}

std::vector<std::uint32_t> FullPagePool::owned_pe_cycles() const {
  std::vector<std::uint32_t> pes;
  for (std::uint32_t chip = 0; chip < geo_.total_chips(); ++chip) {
    pes.reserve(pes.size() + owned_by_chip_[chip].size());
    for (const std::uint32_t blk : owned_by_chip_[chip])
      pes.push_back(dev_.block(chip, blk).pe_cycles());
  }
  return pes;
}

void FullPagePool::fill_health(
    std::span<telemetry::BlockHealth> out) const {
  for (std::uint32_t chip = 0; chip < geo_.total_chips(); ++chip) {
    for (const std::uint32_t blk : owned_by_chip_[chip]) {
      const std::size_t idx = block_index(chip, blk);
      if (idx >= out.size()) continue;
      out[idx].pool =
          static_cast<std::uint8_t>(telemetry::HealthPool::kFull);
      out[idx].valid = meta_[idx].valid_count;
      out[idx].valid_cap = geo_.pages_per_block;
    }
  }
}

void FullPagePool::save_state(util::StateWriter& w) const {
  w.tag("POOL");
  w.u64(meta_.size());
  for (const BlockMeta& m : meta_) {
    w.b(m.owned);
    w.b(m.active);
    w.u32(m.next_page);
    w.u32(m.valid_count);
    w.pod_vec(m.lpn_of_page);
    w.bool_vec(m.valid);
  }
  w.u64(owned_by_chip_.size());
  for (const auto& owned : owned_by_chip_) w.pod_vec(owned);
  w.u64(active_block_.size());
  for (const auto& ab : active_block_) {
    w.b(ab.has_value());
    w.u32(ab.value_or(0));
  }
  w.pair_vec(util::heap_container(victim_heap_));
  wear_index_.save_state(w);
  w.u32(rr_chip_);
  w.u64(blocks_in_use_);
  w.u64(valid_pages_);
}

void FullPagePool::load_state(util::StateReader& r) {
  r.tag("POOL");
  if (r.u64() != meta_.size())
    throw std::runtime_error("FullPagePool::load_state: block count mismatch");
  for (BlockMeta& m : meta_) {
    m.owned = r.b();
    m.active = r.b();
    m.next_page = r.u32();
    m.valid_count = r.u32();
    r.pod_vec(m.lpn_of_page);
    r.bool_vec(m.valid);
  }
  if (r.u64() != owned_by_chip_.size())
    throw std::runtime_error("FullPagePool::load_state: chip count mismatch");
  for (auto& owned : owned_by_chip_) r.pod_vec(owned);
  if (r.u64() != active_block_.size())
    throw std::runtime_error("FullPagePool::load_state: chip count mismatch");
  for (auto& ab : active_block_) {
    const bool has = r.b();
    const std::uint32_t blk = r.u32();
    ab = has ? std::optional<std::uint32_t>(blk) : std::nullopt;
  }
  r.pair_vec(util::heap_container(victim_heap_));
  wear_index_.load_state(r);
  rr_chip_ = r.u32();
  blocks_in_use_ = r.u64();
  valid_pages_ = r.u64();
  spare_meta_.clear();
  in_gc_ = false;
}

}  // namespace esp::ftl
