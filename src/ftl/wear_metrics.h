// Wear-leveling metrics (paper Sec. 4.2: "this unbalanced wearing problem
// is solved by using existing wear-leveling algorithms" with block types
// decided at program time).
//
// In this implementation wear leveling is dynamic -- the shared
// BlockAllocator always hands out the lowest-P/E free block, and blocks
// convert freely between subpage and full-page duty -- so the check that
// it WORKS is a measurement: the P/E spread across the device must stay
// tight even when one region's blocks wear much faster. These helpers
// compute that summary for tests, benches, and reporting.
#pragma once

#include <cstdint>
#include <string>

#include "nand/device.h"

namespace esp::ftl {

struct WearSummary {
  std::uint32_t min_pe = 0;
  std::uint32_t max_pe = 0;
  double mean_pe = 0.0;
  double stddev_pe = 0.0;
  std::uint64_t total_erases = 0;

  /// Absolute spread between the most- and least-worn block.
  std::uint32_t spread() const { return max_pe - min_pe; }
  /// Coefficient of variation; 0 = perfectly even wear.
  double imbalance() const {
    return mean_pe > 0.0 ? stddev_pe / mean_pe : 0.0;
  }

  std::string describe() const;
};

/// Scans every block of the device.
WearSummary measure_wear(const nand::NandDevice& dev);

}  // namespace esp::ftl
