// Abstract FTL interface shared by cgmFTL, fgmFTL and subFTL.
//
// The host interface is sector-granular (4-KB Ssub units): a request is
// (first sector, sector count, sync flag). Simulated time flows through
// explicitly: the driver passes `now`, the FTL returns the completion time
// after all flash operations (including any GC it had to run inline).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ftl/types.h"
#include "telemetry/health.h"
#include "telemetry/sink.h"
#include "util/sim_time.h"

namespace esp::ftl {

class Ftl {
 public:
  virtual ~Ftl() = default;

  /// Writes `count` sectors starting at `sector`. `sync` requests must be
  /// durable on flash at completion (no write-buffer residency).
  virtual IoResult write(std::uint64_t sector, std::uint32_t count, bool sync,
                         SimTime now) = 0;

  /// Reads `count` sectors. When `tokens` is non-null it is filled with one
  /// payload token per sector (0 for never-written sectors); the driver
  /// verifies these against its shadow map.
  virtual IoResult read(std::uint64_t sector, std::uint32_t count,
                        SimTime now, std::vector<std::uint64_t>* tokens) = 0;

  /// Drains any volatile write buffer to flash.
  virtual IoResult flush(SimTime now) = 0;

  /// Discards the given sector range (TRIM).
  ///
  /// Contract (all FTLs and the driver's shadow model implement exactly
  /// this): only WHOLE logical pages contained in [sector, sector+count)
  /// are discarded -- their sectors read back as never-written afterwards.
  /// Partial pages at either edge of the range are untouched and keep
  /// their latest data, wherever it lives (flash or write buffer). This is
  /// the coarsest-common semantic: CGM cannot drop less than a page, and
  /// aligning the fine-grained FTLs to it keeps behavior host-observably
  /// identical across implementations (tests/integration/
  /// trim_differential_test.cpp enforces the agreement).
  virtual void trim(std::uint64_t sector, std::uint32_t count) = 0;

  /// Periodic background hook (retention scanning). Called by the driver
  /// with the current simulated time; cheap when nothing is due.
  virtual SimTime tick(SimTime now) { return now; }

  /// Number of host-visible sectors.
  virtual std::uint64_t logical_sectors() const = 0;

  virtual const FtlStats& stats() const = 0;

  /// Modeled DRAM footprint of all logical-to-physical mapping structures,
  /// for the paper's memory-overhead comparison.
  virtual std::uint64_t mapping_memory_bytes() const = 0;

  virtual std::string name() const = 0;

  /// Attaches a telemetry sink (nullptr detaches). Implementations bind
  /// their FtlStats counters under "<name()>/", register occupancy gauges,
  /// and forward the sink to their pools so mechanism-level op events
  /// (GC copies, migrations, evictions) get recorded. Default: no-op.
  virtual void set_telemetry(telemetry::Sink* /*sink*/) {}

  /// Fills the ownership/validity fields (pool, ESP level, valid count and
  /// capacity) of a health snapshot; `out` holds one row per physical
  /// block, indexed chip * blocks_per_chip + block. Blocks not owned by any
  /// pool stay at their defaults (pool "free"). Default: no-op.
  virtual void collect_health(std::span<telemetry::BlockHealth> /*out*/) const {
  }

  /// Current free-block count of the shared allocator (the health stream's
  /// spare-block SMART attribute). Default: 0 for FTLs without one.
  virtual std::uint64_t free_blocks() const { return 0; }

  /// Whole-FTL snapshot: mapping tables, pools, write buffer, allocator,
  /// stats and maintenance clocks. Must be called between host requests
  /// (no in-flight GC). A restored FTL continues bit-identically to the
  /// saved one. Default: unsupported (fails loudly).
  virtual void save_state(util::StateWriter& /*w*/) const {
    throw std::runtime_error(name() + ": snapshot not supported");
  }
  virtual void load_state(util::StateReader& /*r*/) {
    throw std::runtime_error(name() + ": snapshot not supported");
  }
};

}  // namespace esp::ftl
