// cgmFTL: the coarse-grained mapping baseline (paper Sec. 2).
//
// Logical pages are full-page sized (Sfull = 16 KB). Any host write that
// covers only part of a logical page is serviced with an expensive
// read-modify-write: the old page is read, merged with the new sectors,
// and rewritten out-of-place -- so a 4-KB write consumes a whole 16-KB
// program (request WAF 4). Misaligned full-page writes split into two
// partial writes, reproducing the paper's footnote 1.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ftl/block_allocator.h"
#include "ftl/ftl.h"
#include "ftl/fullpage_pool.h"
#include "nand/device.h"

namespace esp::ftl {

class CgmFtl : public Ftl {
 public:
  struct Config {
    std::uint64_t logical_sectors = 0;  ///< host-visible 4-KB sectors
    std::size_t gc_reserve_blocks = 8;  ///< free-block floor before GC
    /// Static wear leveling: every wl_check_interval host writes, relocate
    /// the coldest block if its P/E lags the hottest by more than
    /// wl_pe_threshold (0 disables).
    std::uint32_t wl_pe_threshold = 64;
    std::uint32_t wl_check_interval = 1024;
    /// GC page moves use the NAND copy-back command when the destination
    /// stays on the source chip (no channel transfers).
    bool use_copyback = false;
    /// Run maintenance paths (wear leveling, and for subFTL retention scan
    /// + idle release) with the original O(device) linear scans instead of
    /// the incremental indices. Decisions are bit-identical either way;
    /// used by differential tests and CI to prove it.
    bool reference_scan_maintenance = false;
  };

  CgmFtl(nand::NandDevice& dev, const Config& config);

  IoResult write(std::uint64_t sector, std::uint32_t count, bool sync,
                 SimTime now) override;
  IoResult read(std::uint64_t sector, std::uint32_t count, SimTime now,
                std::vector<std::uint64_t>* tokens) override;
  IoResult flush(SimTime now) override;
  void trim(std::uint64_t sector, std::uint32_t count) override;

  std::uint64_t logical_sectors() const override {
    return config_.logical_sectors;
  }
  const FtlStats& stats() const override { return stats_; }
  std::uint64_t mapping_memory_bytes() const override;
  std::string name() const override { return "cgmFTL"; }
  void set_telemetry(telemetry::Sink* sink) override;
  void collect_health(std::span<telemetry::BlockHealth> out) const override {
    pool_.fill_health(out);
  }
  std::uint64_t free_blocks() const override {
    return allocator_.total_free();
  }
  void save_state(util::StateWriter& w) const override;
  void load_state(util::StateReader& r) override;

 private:
  /// Services one logical page's worth of the request; returns completion.
  SimTime write_lpn(std::uint64_t lpn, std::uint32_t first_slot,
                    std::uint32_t slot_count, bool small_request, SimTime now);
  void check_range(std::uint64_t sector, std::uint32_t count) const;

  nand::NandDevice& dev_;
  Config config_;
  nand::Geometry geo_;
  nand::AddressCodec codec_;
  FtlStats stats_;
  BlockAllocator allocator_;
  FullPagePool pool_;
  std::vector<std::uint64_t> l2p_;      ///< lpn -> linear page (kUnmapped)
  std::vector<std::uint32_t> version_;  ///< per-sector write counter
  std::uint32_t writes_since_wl_ = 0;
  telemetry::Sink* sink_ = nullptr;
};

}  // namespace esp::ftl
