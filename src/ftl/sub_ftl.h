// subFTL: the paper's ESP-aware hybrid FTL (Sec. 4).
//
// NAND space is split into two regions managed differently:
//   * the SUBPAGE REGION (default 20 % of flash) absorbs every small write
//     as a single 4-KB ESP subpage program -- no internal fragmentation,
//     request WAF ~= 1 -- and is mapped by a per-sector hash table (small,
//     because a physical page holds at most one valid subpage);
//   * the FULL-PAGE REGION stores full-page writes and evicted cold data
//     under conventional coarse-grained mapping.
//
// Data placement (Sec. 4.1): after write-buffer merging, aligned full-page
// runs go to the full-page region, everything shorter goes to the subpage
// region. Because small writes skew hot and full-page writes skew cold,
// this also acts as a hot/cold separator.
//
// The extended mapping resolves a sector by: write buffer -> subpage hash
// -> coarse L2P. Retention management (Sec. 4.3) periodically evicts
// subpages older than 15 days to the full-page region, ahead of the
// 1-month conservative ESP retention horizon.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ftl/block_allocator.h"
#include "ftl/ftl.h"
#include "ftl/fullpage_pool.h"
#include "ftl/subpage_pool.h"
#include "ftl/write_buffer.h"
#include "nand/device.h"

namespace esp::ftl {

class SubFtl : public Ftl {
 public:
  struct Config {
    std::uint64_t logical_sectors = 0;
    double subpage_region_fraction = 0.20;  ///< paper Sec. 4
    std::size_t gc_reserve_blocks = 8;
    std::size_t buffer_sectors = 512;
    SimTime buffer_insert_us = 2.0;
    SimTime retention_evict_age = 15 * sim_time::kDay;   ///< paper Sec. 4.3
    SimTime retention_scan_interval = 1 * sim_time::kDay;
    // Subpage-region writing-policy knobs (see SubpagePool::Config and
    // bench/ablation_policy).
    double advance_max_valid_fraction = 0.25;
    std::uint32_t gc_free_target = 2;
    /// Static wear leveling knobs (see CgmFtl::Config); both regions are
    /// leveled, alternating per check.
    std::uint32_t wl_pe_threshold = 64;
    std::uint32_t wl_check_interval = 1024;
    /// Copy-back GC in the full-page region (see CgmFtl::Config).
    bool use_copyback = false;
    /// Run maintenance paths (wear leveling, and for subFTL retention scan
    /// + idle release) with the original O(device) linear scans instead of
    /// the incremental indices. Decisions are bit-identical either way;
    /// used by differential tests and CI to prove it.
    bool reference_scan_maintenance = false;
  };

  SubFtl(nand::NandDevice& dev, const Config& config);

  IoResult write(std::uint64_t sector, std::uint32_t count, bool sync,
                 SimTime now) override;
  IoResult read(std::uint64_t sector, std::uint32_t count, SimTime now,
                std::vector<std::uint64_t>* tokens) override;
  IoResult flush(SimTime now) override;
  void trim(std::uint64_t sector, std::uint32_t count) override;
  SimTime tick(SimTime now) override;

  std::uint64_t logical_sectors() const override {
    return config_.logical_sectors;
  }
  const FtlStats& stats() const override { return stats_; }
  std::uint64_t mapping_memory_bytes() const override;
  std::string name() const override { return "subFTL"; }
  void set_telemetry(telemetry::Sink* sink) override;
  void collect_health(std::span<telemetry::BlockHealth> out) const override {
    pool_full_.fill_health(out);
    pool_sub_.fill_health(out);
  }
  std::uint64_t free_blocks() const override {
    return allocator_.total_free();
  }

  void save_state(util::StateWriter& w) const override;
  void load_state(util::StateReader& r) override;

  // Introspection for tests and wear metrics.
  const SubpagePool& subpage_pool() const { return pool_sub_; }
  const FullPagePool& fullpage_pool() const { return pool_full_; }
  std::size_t subpage_mapping_entries() const { return sub_entries_; }

 private:
  SimTime flush_run(const std::vector<BufferedSector>& run, SimTime now);
  SimTime write_full_lpn(std::uint64_t lpn, const BufferedSector* group,
                         SimTime now);
  SimTime write_small_sector(const BufferedSector& bs, SimTime now);
  /// Eviction target of the subpage pool: merges the batch into the
  /// full-page region with one read-modify-write per logical page.
  SimTime evict_batch(std::span<const SectorWrite> batch, SimTime now,
                      bool retention);
  /// Read-modify-write of one sector into the full-page region (shared by
  /// eviction and the small-write overflow fallback).
  SimTime rmw_into_fullpage(std::uint64_t sector, std::uint64_t token,
                            SimTime now);
  void drop_subpage_copy(std::uint64_t sector);
  void check_range(std::uint64_t sector, std::uint32_t count) const;

  nand::NandDevice& dev_;
  Config config_;
  nand::Geometry geo_;
  nand::AddressCodec codec_;
  FtlStats stats_;
  BlockAllocator allocator_;
  FullPagePool pool_full_;
  SubpagePool pool_sub_;
  WriteBuffer buffer_;
  std::vector<std::uint64_t> l2p_;      ///< lpn -> linear page (full region)
  /// Subpage map as flat per-sector arrays (kUnmapped = not in the region):
  /// the small-write/read hot path costs one indexed load instead of a
  /// hash+probe. The MODELED mapping cost stays the paper's hash table --
  /// 16 bytes per live entry, counted by sub_entries_ -- not these
  /// simulator-side arrays.
  std::vector<std::uint64_t> sub_lin_;  ///< sector -> linear subpage
  std::vector<bool> sub_hot_;  ///< updated since entering the region
  std::size_t sub_entries_ = 0;  ///< live subpage-map entries
  std::vector<std::uint32_t> version_;
  SimTime last_retention_scan_ = 0.0;
  std::uint32_t writes_since_wl_ = 0;
  bool wl_toggle_ = false;  ///< alternate regions between WL checks
  telemetry::Sink* sink_ = nullptr;
};

}  // namespace esp::ftl
