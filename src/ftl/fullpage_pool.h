// Coarse-grained (full-page) storage pool.
//
// Implements the CGM scheme's physical layer, shared by cgmFTL (as its only
// pool) and subFTL (as its full-page region): out-of-place full-page
// writes striped round-robin across chips, per-page validity tracking,
// greedy garbage collection (victim = fewest valid pages), and dynamic
// wear leveling via the shared low-P/E-first BlockAllocator.
//
// Mapping tables stay in the owning FTL; the pool reports relocations
// through a callback so the FTL can patch its L2P entries.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <span>
#include <vector>

#include "ftl/block_allocator.h"
#include "ftl/types.h"
#include "ftl/wear_index.h"
#include "nand/address.h"
#include "nand/device.h"
#include "telemetry/sink.h"

namespace esp::ftl {

class FullPagePool {
 public:
  struct Config {
    /// Max blocks this pool may hold simultaneously (region quota).
    std::uint64_t quota_blocks = ~0ull;
    /// GC starts when the shared allocator drops to this many free blocks.
    std::size_t reserve_free_blocks = 8;
    /// Use the NAND copy-back command for GC page moves whose destination
    /// can stay on the source chip: saves both channel transfers per copy.
    bool use_copyback = false;
    /// Debug/differential mode: find wear-leveling targets with the
    /// original O(device) linear scan instead of the incremental wear
    /// index. Decisions are bit-identical either way (see
    /// docs/PERFORMANCE.md); the scan mode exists so tests and CI can keep
    /// proving that on every change.
    bool reference_scan_maintenance = false;
  };

  /// Invoked when GC moves a logical page: (lpn, new linear page address).
  using RelocateFn =
      std::function<void(std::uint64_t lpn, std::uint64_t new_page_lin)>;

  FullPagePool(nand::NandDevice& dev, BlockAllocator& allocator,
               const Config& config, FtlStats& stats, RelocateFn relocate);

  /// Programs one full page of tokens for `lpn`; runs GC first if space is
  /// tight. Returns the linear page address and the completion time.
  std::pair<std::uint64_t, SimTime> write_page(
      std::uint64_t lpn, std::span<const std::uint64_t> tokens, SimTime now);

  /// Marks a previously written page stale.
  void invalidate(std::uint64_t page_lin);

  /// Runs one GC pass if the pool is over quota or the allocator is below
  /// reserve; returns the (possibly advanced) time.
  SimTime maybe_gc(SimTime now);

  /// Static wear leveling (paper Sec. 4.2): when this pool's least-worn
  /// sealed block lags the device's most-worn block by more than
  /// `pe_threshold` cycles, relocate its (typically cold) contents and
  /// erase it so it rejoins the low-P/E-first hot rotation. Returns the
  /// possibly advanced time; cheap no-op when wear is balanced.
  SimTime static_wear_level(SimTime now, std::uint32_t pe_threshold);

  std::uint64_t blocks_in_use() const { return blocks_in_use_; }
  std::uint64_t valid_pages() const { return valid_pages_; }
  const Config& config() const { return config_; }

  /// For wear metrics: P/E counts of blocks currently owned by this pool.
  std::vector<std::uint32_t> owned_pe_cycles() const;

  /// Health snapshot: marks owned blocks as pool "full" with their valid
  /// page count (capacity = pages per block).
  void fill_health(std::span<telemetry::BlockHealth> out) const;

  /// Attaches a telemetry sink (nullptr detaches); GC / wear-leveling
  /// block collections are recorded as mechanism-lane op events.
  void set_telemetry(telemetry::Sink* sink) { sink_ = sink; }

  /// Snapshot support: per-block metadata, owned-block index, active
  /// blocks, and the exact victim/wear heap layouts. Recycled spare arrays
  /// are NOT archived (pure allocation reuse, no behavior).
  void save_state(util::StateWriter& w) const;
  void load_state(util::StateReader& r);

 private:
  struct BlockMeta {
    bool owned = false;
    bool active = false;              ///< currently receiving writes
    std::uint32_t next_page = 0;      ///< program cursor
    std::uint32_t valid_count = 0;
    std::vector<std::uint64_t> lpn_of_page;  ///< reverse map
    std::vector<bool> valid;
  };

  std::size_t block_index(std::uint32_t chip, std::uint32_t block) const {
    return static_cast<std::size_t>(chip) * geo_.blocks_per_chip + block;
  }
  /// Owned-block index (ascending block id per chip): lets owned_pe_cycles
  /// walk only this pool's blocks instead of the whole device.
  void index_add(std::uint32_t chip, std::uint32_t block);
  void index_remove(std::uint32_t chip, std::uint32_t block);
  /// BlockMeta per-page array recycling (see SubpagePool::retire_meta_arrays).
  void retire_meta_arrays(BlockMeta& m);
  void init_meta_arrays(BlockMeta& m);
  bool space_pressure() const;
  SimTime collect(SimTime now);  ///< one greedy GC pass
  /// Relocates every valid page of the given sealed block, erases it, and
  /// returns it to the allocator (shared by GC and static wear leveling).
  SimTime collect_block(std::size_t idx, SimTime now, bool for_wear_leveling);
  void push_victim_candidate(std::size_t idx);
  /// Pops the current min-valid collectable block; nullopt when none.
  std::optional<std::size_t> pop_victim();
  /// Picks/opens the active block on the next chip; returns false when no
  /// block is available anywhere. `now` stamps block-allocation telemetry.
  bool ensure_active(std::uint32_t* chip_out, SimTime now);
  /// Same, pinned to one chip (used by the copyback GC path).
  bool ensure_active_on(std::uint32_t chip, SimTime now);

  nand::NandDevice& dev_;
  BlockAllocator& allocator_;
  Config config_;
  FtlStats& stats_;
  RelocateFn relocate_;
  nand::Geometry geo_;
  nand::AddressCodec codec_;

  std::vector<BlockMeta> meta_;  ///< indexed by chip*blocks_per_chip+block
  std::vector<std::vector<std::uint32_t>> owned_by_chip_;
  std::vector<std::optional<std::uint32_t>> active_block_;  ///< per chip
  /// Lazy min-heap of GC candidates: (valid_count at push, block index).
  /// Stale entries (count changed, block re-erased, ...) are skipped at pop.
  std::priority_queue<std::pair<std::uint32_t, std::size_t>,
                      std::vector<std::pair<std::uint32_t, std::size_t>>,
                      std::greater<>>
      victim_heap_;
  /// Wear-leveling candidates, pushed at seal time (see wear_index.h).
  WearIndex wear_index_;
  /// Recycled per-page arrays of released blocks.
  struct SpareArrays {
    std::vector<std::uint64_t> lpn_of_page;
    std::vector<bool> valid;
  };
  std::vector<SpareArrays> spare_meta_;
  /// Pooled GC read buffer (collect_block never nests within itself).
  std::vector<std::uint64_t> gc_tokens_;
  std::uint32_t rr_chip_ = 0;
  std::uint64_t blocks_in_use_ = 0;
  std::uint64_t valid_pages_ = 0;
  bool in_gc_ = false;
  telemetry::Sink* sink_ = nullptr;
};

}  // namespace esp::ftl
