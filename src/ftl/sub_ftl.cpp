#include "ftl/sub_ftl.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "telemetry/metrics.h"
#include "util/logger.h"

namespace esp::ftl {
namespace {

std::uint64_t subpage_quota(const nand::Geometry& geo, double fraction) {
  const auto quota = static_cast<std::uint64_t>(
      std::llround(fraction * static_cast<double>(geo.total_blocks())));
  return std::max<std::uint64_t>(quota, geo.total_chips());
}

}  // namespace

SubFtl::SubFtl(nand::NandDevice& dev, const Config& config)
    : dev_(dev),
      config_(config),
      geo_(dev.geometry()),
      codec_(geo_),
      allocator_(geo_),
      // No static quota on the full-page region: block types are decided
      // at program time (paper Sec. 4.2), so blocks the subpage region is
      // not actually using remain available here. Space pressure is
      // governed by the shared allocator's reserve floor.
      pool_full_(dev, allocator_,
                 FullPagePool::Config{/*quota_blocks=*/~0ull,
                                      config.gc_reserve_blocks,
                                      config.use_copyback,
                                      config.reference_scan_maintenance},
                 stats_,
                 [this](std::uint64_t lpn, std::uint64_t new_lin) {
                   l2p_[lpn] = new_lin;
                 }),
      pool_sub_(dev, allocator_,
                SubpagePool::Config{
                    .quota_blocks =
                        subpage_quota(geo_, config.subpage_region_fraction),
                    .reserve_free_blocks = config.gc_reserve_blocks,
                    .expand_reserve_blocks =
                        config.gc_reserve_blocks +
                        std::max<std::size_t>(geo_.total_blocks() / 32,
                                              geo_.total_chips()),
                    .retention_evict_age = config.retention_evict_age,
                    .gc_free_target = config.gc_free_target,
                    .advance_max_valid_fraction =
                        config.advance_max_valid_fraction,
                    .reference_scan_maintenance =
                        config.reference_scan_maintenance},
                stats_,
                [this](std::uint64_t sector, std::uint64_t new_lin) {
                  if (sub_lin_[sector] == nand::kUnmapped) ++sub_entries_;
                  sub_lin_[sector] = new_lin;
                },
                [this](std::span<const SectorWrite> batch, SimTime now,
                       bool retention) {
                  return evict_batch(batch, now, retention);
                },
                [this](std::uint64_t sector) -> bool {
                  return sub_hot_[sector];
                },
                [this](std::uint64_t sector) { sub_hot_[sector] = false; }),
      buffer_(config.buffer_sectors) {
  if (config_.logical_sectors == 0)
    throw std::invalid_argument("SubFtl: logical_sectors must be > 0");
  if (config_.subpage_region_fraction <= 0.0 ||
      config_.subpage_region_fraction >= 1.0)
    throw std::invalid_argument(
        "SubFtl: subpage_region_fraction must be in (0, 1)");
  const std::uint32_t subs = geo_.subpages_per_page;
  const std::uint64_t lpns = (config_.logical_sectors + subs - 1) / subs;
  // Hard feasibility, worst case: every logical page valid and cold in the
  // full-page region while the subpage region sits at its quota. Configs
  // near this bound still work -- the region stops expanding under space
  // pressure and GC falls back gracefully -- but beyond it the data
  // literally cannot fit.
  const std::uint64_t region_pages =
      pool_sub_.config().quota_blocks * geo_.pages_per_block;
  if (lpns + region_pages > geo_.total_pages())
    throw std::invalid_argument(
        "SubFtl: logical space plus subpage-region quota exceeds physical "
        "capacity; reduce logical_sectors or subpage_region_fraction");
  l2p_.assign(lpns, nand::kUnmapped);
  sub_lin_.assign(config_.logical_sectors, nand::kUnmapped);
  sub_hot_.assign(config_.logical_sectors, false);
  version_.assign(config_.logical_sectors, 0);
}

void SubFtl::check_range(std::uint64_t sector, std::uint32_t count) const {
  if (count == 0 || sector + count > config_.logical_sectors)
    throw std::out_of_range("SubFtl: sector range outside logical space");
}

void SubFtl::drop_subpage_copy(std::uint64_t sector) {
  if (sub_lin_[sector] == nand::kUnmapped) return;
  pool_sub_.invalidate(sub_lin_[sector]);
  sub_lin_[sector] = nand::kUnmapped;
  sub_hot_[sector] = false;
  --sub_entries_;
}

SimTime SubFtl::write_full_lpn(std::uint64_t lpn, const BufferedSector* group,
                               SimTime now) {
  const std::uint32_t subs = geo_.subpages_per_page;
  std::vector<std::uint64_t> tokens(subs);
  std::uint64_t small_sectors = 0;
  for (std::uint32_t s = 0; s < subs; ++s) {
    // The fresh full page supersedes any subpage-region copy.
    drop_subpage_copy(group[s].sector);
    tokens[s] = group[s].token;
    if (group[s].small) ++small_sectors;
  }
  if (l2p_[lpn] != nand::kUnmapped) {
    pool_full_.invalidate(l2p_[lpn]);
    l2p_[lpn] = nand::kUnmapped;
  }
  const auto [new_lin, done] = pool_full_.write_page(lpn, tokens, now);
  l2p_[lpn] = new_lin;
  // Small writes that merged into a full page pay exactly their own bytes.
  stats_.small_service_flash_bytes += small_sectors * geo_.subpage_bytes();
  return done;
}

SimTime SubFtl::write_small_sector(const BufferedSector& bs, SimTime now) {
  if (sub_lin_[bs.sector] != nand::kUnmapped) {
    // Re-update of a region-resident sector: the old subpage goes stale and
    // the sector is proven hot. The entry leaves the map until the pool
    // re-places it (or the overflow fallback below demotes it).
    pool_sub_.invalidate(sub_lin_[bs.sector]);
    sub_lin_[bs.sector] = nand::kUnmapped;
    --sub_entries_;
    sub_hot_[bs.sector] = true;
  }
  if (const auto placed = pool_sub_.try_write_sector(bs.sector, bs.token,
                                                     now)) {
    if (bs.small) stats_.small_service_flash_bytes += geo_.subpage_bytes();
    return placed->second;
  }
  // Overflow valve: the region cannot take another subpage right now
  // (extreme space pressure). Service the write the CGM way instead of
  // failing -- correctness first, the request WAF of this write is 4.
  sub_hot_[bs.sector] = false;
  const SimTime done = rmw_into_fullpage(bs.sector, bs.token, now);
  if (bs.small) stats_.small_service_flash_bytes += geo_.page_bytes;
  return done;
}

SimTime SubFtl::flush_run(const std::vector<BufferedSector>& run,
                          SimTime now) {
  // Data placement (Sec. 4.1): a COMPLETE logical page inside the flush
  // group goes to the full-page region; incomplete pages are small writes
  // for the subpage region. (`run` is sorted; split at page boundaries.)
  const std::uint32_t subs = geo_.subpages_per_page;
  SimTime done = now;
  std::size_t i = 0;
  while (i < run.size()) {
    const std::uint64_t lpn = run[i].sector / subs;
    std::size_t j = i;
    while (j < run.size() && run[j].sector / subs == lpn) ++j;
    if (j - i == subs) {
      done = std::max(done, write_full_lpn(lpn, &run[i], now));
    } else {
      for (std::size_t k = i; k < j; ++k)
        done = std::max(done, write_small_sector(run[k], now));
    }
    i = j;
  }
  return done;
}

SimTime SubFtl::rmw_into_fullpage(std::uint64_t sector, std::uint64_t token,
                                  SimTime now) {
  const std::uint32_t subs = geo_.subpages_per_page;
  const std::uint64_t lpn = sector / subs;
  // The overflow valve services a small write the CGM way; the whole
  // read + merge + full-page program attributes to RMW.
  const telemetry::CauseScope cause(sink_, telemetry::Cause::kRmw, lpn, now);
  std::vector<std::uint64_t> tokens(subs, 0);
  SimTime t = now;
  const bool merges_old_page = l2p_[lpn] != nand::kUnmapped;
  if (merges_old_page) {
    const auto read = dev_.read_page(codec_.decode_page(l2p_[lpn]), t);
    ++stats_.flash_reads;
    ++stats_.rmw_ops;
    for (std::uint32_t s = 0; s < subs; ++s) {
      tokens[s] = read.token[s];
      if (read.status[s] == nand::ReadStatus::kCorrupted ||
          read.status[s] == nand::ReadStatus::kUncorrectable)
        ++stats_.read_failures;
    }
    t = read.done;
    pool_full_.invalidate(l2p_[lpn]);
    l2p_[lpn] = nand::kUnmapped;
  }
  tokens[sector % subs] = token;
  const auto [new_lin, done] = pool_full_.write_page(lpn, tokens, t);
  l2p_[lpn] = new_lin;
  if (sink_ && merges_old_page && sink_->wants_op(telemetry::OpKind::kRmw))
    sink_->record_op({telemetry::OpKind::kRmw, now, done, 1});
  return done;
}

SimTime SubFtl::evict_batch(std::span<const SectorWrite> batch, SimTime now,
                            bool /*retention*/) {
  // The pool has already dropped its bookkeeping for these subpages;
  // forget the hash entries, then merge the sectors into their logical
  // pages in the full-page region -- ONE read-modify-write per logical
  // page, however many of its sectors the batch carries (sequential small
  // writes evict together, so this merge matters).
  std::vector<SectorWrite> sorted(batch.begin(), batch.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const SectorWrite& a, const SectorWrite& b) {
              return a.sector < b.sector;
            });
  const std::uint32_t subs = geo_.subpages_per_page;
  SimTime done = now;
  std::size_t i = 0;
  std::vector<std::uint64_t> tokens(subs, 0);
  while (i < sorted.size()) {
    const std::uint64_t lpn = sorted[i].sector / subs;
    std::size_t j = i;
    while (j < sorted.size() && sorted[j].sector / subs == lpn) ++j;

    tokens.assign(subs, 0);
    SimTime t = now;
    const bool merges_old_page = l2p_[lpn] != nand::kUnmapped;
    if (merges_old_page) {
      const auto read = dev_.read_page(codec_.decode_page(l2p_[lpn]), t);
      ++stats_.flash_reads;
      ++stats_.rmw_ops;
      for (std::uint32_t s = 0; s < subs; ++s) {
        tokens[s] = read.token[s];
        if (read.status[s] == nand::ReadStatus::kCorrupted ||
            read.status[s] == nand::ReadStatus::kUncorrectable)
          ++stats_.read_failures;
      }
      t = read.done;
      pool_full_.invalidate(l2p_[lpn]);
      l2p_[lpn] = nand::kUnmapped;
    }
    for (std::size_t k = i; k < j; ++k) {
      const std::uint64_t es = sorted[k].sector;
      if (sub_lin_[es] != nand::kUnmapped) --sub_entries_;
      sub_lin_[es] = nand::kUnmapped;
      sub_hot_[es] = false;
      tokens[es % subs] = sorted[k].token;
    }
    const auto [new_lin, page_done] = pool_full_.write_page(lpn, tokens, t);
    l2p_[lpn] = new_lin;
    stats_.small_extra_flash_bytes += geo_.page_bytes;
    if (sink_ && merges_old_page && sink_->wants_op(telemetry::OpKind::kRmw))
      sink_->record_op({telemetry::OpKind::kRmw, now, page_done,
                        static_cast<std::uint64_t>(j - i)});
    done = std::max(done, page_done);
    i = j;
  }
  return done;
}

IoResult SubFtl::write(std::uint64_t sector, std::uint32_t count, bool sync,
                       SimTime now) {
  check_range(sector, count);
  // Block-type conversion back to the shared pool: when free blocks run
  // low, garbage-only subpage-region blocks are returned so they can serve
  // the full-page region (their type is re-decided at next program).
  if (allocator_.total_free() <=
      config_.gc_reserve_blocks + geo_.total_chips())
    now = pool_sub_.release_idle_blocks(now);
  if (config_.wl_check_interval > 0 &&
      ++writes_since_wl_ >= config_.wl_check_interval) {
    writes_since_wl_ = 0;
    wl_toggle_ = !wl_toggle_;
    now = wl_toggle_
              ? pool_full_.static_wear_level(now, config_.wl_pe_threshold)
              : pool_sub_.static_wear_level(now, config_.wl_pe_threshold);
  }
  ++stats_.host_write_requests;
  stats_.host_write_sectors += count;
  const bool small = count < geo_.subpages_per_page;
  if (small) {
    ++stats_.small_write_requests;
    stats_.small_write_bytes +=
        static_cast<std::uint64_t>(count) * geo_.subpage_bytes();
  }

  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint64_t s = sector + i;
    if (buffer_.insert(s, make_token(s, ++version_[s]), small))
      ++stats_.buffer_hits;
  }

  SimTime done = now + config_.buffer_insert_us;
  if (sync) {
    const auto run = buffer_.extract_page_group(sector, geo_.subpages_per_page);
    done = std::max(done, flush_run(run, now));
  }
  while (buffer_.over_capacity()) {
    const auto victim = buffer_.extract_oldest_page_group(geo_.subpages_per_page);
    if (victim.empty()) break;
    done = std::max(done, flush_run(victim, now));
  }
  return IoResult{done, true};
}

IoResult SubFtl::read(std::uint64_t sector, std::uint32_t count, SimTime now,
                      std::vector<std::uint64_t>* tokens) {
  check_range(sector, count);
  ++stats_.host_read_requests;
  stats_.host_read_sectors += count;
  if (tokens) tokens->assign(count, 0);

  SimTime done = now;
  bool ok = true;
  // Resolve per sector: write buffer -> subpage hash -> coarse L2P. Full
  // pages are read at most once per logical page per request.
  std::uint32_t i = 0;
  while (i < count) {
    const std::uint64_t s = sector + i;
    std::uint64_t token = 0;
    if (buffer_.lookup(s, &token)) {
      ++stats_.buffer_hits;
      if (tokens) (*tokens)[i] = token;
      ++i;
      continue;
    }
    if (sub_lin_[s] != nand::kUnmapped) {
      const auto ack =
          dev_.read_subpage(codec_.decode_subpage(sub_lin_[s]), now);
      ++stats_.flash_reads;
      if (ack.status != nand::ReadStatus::kOk) {
        ok = false;
        ++stats_.read_failures;
      }
      if (tokens) (*tokens)[i] = ack.token;
      done = std::max(done, ack.done);
      ++i;
      continue;
    }
    // Fall back to the full-page region: serve every remaining sector of
    // this logical page (that is not shadowed) from one page read.
    const std::uint32_t subs = geo_.subpages_per_page;
    const std::uint64_t lpn = s / subs;
    if (l2p_[lpn] == nand::kUnmapped) {
      ++i;  // never written: token stays 0
      continue;
    }
    const auto read = dev_.read_page(codec_.decode_page(l2p_[lpn]), now);
    ++stats_.flash_reads;
    done = std::max(done, read.done);
    while (i < count) {
      const std::uint64_t cur = sector + i;
      if (cur / subs != lpn) break;
      if (buffer_.lookup(cur, &token)) {
        ++stats_.buffer_hits;
        if (tokens) (*tokens)[i] = token;
      } else if (sub_lin_[cur] != nand::kUnmapped) {
        const auto ack =
            dev_.read_subpage(codec_.decode_subpage(sub_lin_[cur]), now);
        ++stats_.flash_reads;
        if (ack.status != nand::ReadStatus::kOk) {
          ok = false;
          ++stats_.read_failures;
        }
        if (tokens) (*tokens)[i] = ack.token;
        done = std::max(done, ack.done);
      } else {
        const auto slot = static_cast<std::uint32_t>(cur % subs);
        if (read.status[slot] == nand::ReadStatus::kCorrupted ||
            read.status[slot] == nand::ReadStatus::kUncorrectable) {
          ok = false;
          ++stats_.read_failures;
        }
        if (tokens) (*tokens)[i] = read.token[slot];
      }
      ++i;
    }
  }
  return IoResult{done, ok};
}

IoResult SubFtl::flush(SimTime now) {
  // Explicit host flush: every program the drain issues (and any GC it
  // triggers) attributes to the flush, not to the host write path.
  const telemetry::CauseScope cause(sink_, telemetry::Cause::kFlush,
                                    buffer_.size(), now);
  SimTime done = now;
  while (!buffer_.empty()) {
    const auto run = buffer_.extract_oldest_page_group(geo_.subpages_per_page);
    if (run.empty()) break;
    done = std::max(done, flush_run(run, now));
  }
  return IoResult{done, true};
}

void SubFtl::trim(std::uint64_t sector, std::uint32_t count) {
  check_range(sector, count);
  // Page-aligned contract (see Ftl::trim): only whole logical pages are
  // discarded. Partial edges keep their latest data -- crucially including
  // write-buffer entries, which may hold the ONLY copy of a sector's
  // newest version; dropping those would resurrect the stale flash copy.
  const std::uint32_t subs = geo_.subpages_per_page;
  const std::uint64_t first_lpn = (sector + subs - 1) / subs;
  const std::uint64_t end_lpn = (sector + count) / subs;
  for (std::uint64_t lpn = first_lpn; lpn < end_lpn; ++lpn) {
    for (std::uint32_t s = 0; s < subs; ++s) {
      buffer_.erase(lpn * subs + s);
      drop_subpage_copy(lpn * subs + s);
    }
    if (l2p_[lpn] != nand::kUnmapped) {
      pool_full_.invalidate(l2p_[lpn]);
      l2p_[lpn] = nand::kUnmapped;
    }
  }
}

SimTime SubFtl::tick(SimTime now) {
  if (now - last_retention_scan_ < config_.retention_scan_interval)
    return now;
  last_retention_scan_ = now;
  return pool_sub_.retention_scan(now);
}

std::uint64_t SubFtl::mapping_memory_bytes() const {
  // Coarse table: 32-bit PPA per logical page. Hash table: modeled 16 bytes
  // per entry (sector key + sub-PPA + flags); bounded by one valid subpage
  // per physical page of the subpage region.
  return l2p_.size() * sizeof(std::uint32_t) + sub_entries_ * 16;
}

void SubFtl::set_telemetry(telemetry::Sink* sink) {
  sink_ = sink;
  pool_full_.set_telemetry(sink);
  pool_sub_.set_telemetry(sink);
  if (!sink) return;
  telemetry::MetricsRegistry& reg = sink->registry();
  bind_stats(reg, name(), stats_);
  reg.gauge(name() + "/region_blocks").set_provider([this] {
    return static_cast<double>(pool_sub_.blocks_in_use());
  });
  reg.gauge(name() + "/region_valid_sectors").set_provider([this] {
    return static_cast<double>(pool_sub_.valid_sectors());
  });
  reg.gauge(name() + "/fullpage_blocks").set_provider([this] {
    return static_cast<double>(pool_full_.blocks_in_use());
  });
  reg.gauge(name() + "/mapping_memory_bytes").set_provider([this] {
    return static_cast<double>(mapping_memory_bytes());
  });
}

void SubFtl::save_state(util::StateWriter& w) const {
  w.tag("SUBF");
  save_stats(w, stats_);
  allocator_.save_state(w);
  pool_full_.save_state(w);
  pool_sub_.save_state(w);
  buffer_.save_state(w);
  w.pod_vec(l2p_);
  w.pod_vec(sub_lin_);
  w.bool_vec(sub_hot_);
  w.u64(sub_entries_);
  w.pod_vec(version_);
  w.f64(last_retention_scan_);
  w.u32(writes_since_wl_);
  w.b(wl_toggle_);
}

void SubFtl::load_state(util::StateReader& r) {
  r.tag("SUBF");
  load_stats(r, stats_);
  allocator_.load_state(r);
  pool_full_.load_state(r);
  pool_sub_.load_state(r);
  buffer_.load_state(r);
  r.pod_vec(l2p_);
  r.pod_vec(sub_lin_);
  r.bool_vec(sub_hot_);
  sub_entries_ = r.u64();
  r.pod_vec(version_);
  last_retention_scan_ = r.f64();
  writes_since_wl_ = r.u32();
  wl_toggle_ = r.b();
}

}  // namespace esp::ftl
