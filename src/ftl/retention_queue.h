// Age-bucketed queue of programmed subpages awaiting retention eviction.
//
// The paper's retention-age eviction (Sec. 4.3) needs "every valid subpage
// written more than retention_evict_age ago" once per scan interval. The
// scan-based implementation walks every owned block x every page -- O(device)
// per invocation, which dwarfs per-request work at production geometry.
// This queue records each program at write time into coarse time buckets so
// a scan touches only entries old enough to matter:
//
//   * push() appends (block, page, written_at) to the bucket
//     floor(written_at / bucket_width);
//   * collect_expired() drains every bucket that can possibly hold an
//     expired entry (bucket start < conservative_cutoff + one bucket of
//     slack, so floating-point rounding of `now - age` can never hide a
//     borderline entry) and tests each entry with the caller's EXACT
//     predicate -- the same `now - written_at > age` comparison the linear
//     scan used, preserving bit-identical eviction decisions. Entries in a
//     drained bucket that are not yet expired are kept in place.
//
// Entries are never removed on invalidate/GC/overwrite; the caller filters
// stale entries against current block metadata when a scan drains them
// (owned + valid + written_at still matches). A matching triple implies the
// linear scan would have made the identical decision, because the decision
// depends only on those fields.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "util/serialize.h"
#include "util/sim_time.h"

namespace esp::ftl {

class RetentionQueue {
 public:
  struct Entry {
    std::size_t block_idx = 0;
    std::uint32_t page = 0;
    SimTime written_at = 0.0;
  };

  /// bucket_width is the coarseness of the age buckets, in simulated time
  /// units; a fraction of the eviction age (e.g. age/32) keeps the
  /// boundary-bucket re-scan negligible. Must be > 0.
  explicit RetentionQueue(SimTime bucket_width)
      : width_(bucket_width > 0.0 ? bucket_width : 1.0) {}

  void push(std::size_t block_idx, std::uint32_t page,
            SimTime written_at) {
    buckets_[bucket_of(written_at)].push_back(
        Entry{block_idx, page, written_at});
    ++size_;
  }

  /// Appends to `out` every queued entry for which expired(written_at) is
  /// true and removes it from the queue. `conservative_cutoff` bounds the
  /// search (typically now - age): only buckets starting below
  /// cutoff + bucket_width are examined, and within those the exact
  /// predicate decides. Entries examined but not expired stay queued.
  template <typename Expired>
  void collect_expired(SimTime conservative_cutoff, Expired&& expired,
                       std::vector<Entry>& out) {
    auto it = buckets_.begin();
    while (it != buckets_.end()) {
      const SimTime bucket_start =
          static_cast<SimTime>(it->first) * width_;
      if (bucket_start >= conservative_cutoff + width_) break;
      auto& entries = it->second;
      std::size_t kept = 0;
      for (const Entry& e : entries) {
        if (expired(e.written_at)) {
          out.push_back(e);
        } else {
          entries[kept++] = e;
        }
      }
      size_ -= entries.size() - kept;
      entries.resize(kept);
      if (entries.empty()) {
        it = buckets_.erase(it);
      } else {
        ++it;
      }
    }
  }

  /// Queued entries, stale ones included (introspection/tests).
  std::size_t size() const { return size_; }
  std::size_t bucket_count() const { return buckets_.size(); }

  void clear() {
    buckets_.clear();
    size_ = 0;
  }

  /// Snapshot support: bucket keys and per-bucket entry order are
  /// preserved exactly (std::map iteration is key-ordered, so the on-disk
  /// layout is canonical).
  void save_state(util::StateWriter& w) const {
    w.tag("RETQ");
    w.f64(width_);
    w.u64(buckets_.size());
    for (const auto& [key, entries] : buckets_) {
      w.i64(key);
      w.pod_vec(entries);
    }
    w.u64(size_);
  }
  void load_state(util::StateReader& r) {
    r.tag("RETQ");
    const SimTime width = r.f64();
    if (width != width_)
      throw std::runtime_error(
          "RetentionQueue::load_state: bucket width mismatch");
    const std::uint64_t n = r.u64();
    buckets_.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::int64_t key = r.i64();
      std::vector<Entry> entries;
      r.pod_vec(entries);
      buckets_.emplace(key, std::move(entries));
    }
    size_ = r.u64();
  }

 private:
  std::int64_t bucket_of(SimTime t) const {
    return static_cast<std::int64_t>(t / width_);
  }

  SimTime width_;
  // Ordered map: collect_expired walks oldest buckets first and stops at
  // the first bucket that cannot contain an expired entry.
  std::map<std::int64_t, std::vector<Entry>> buckets_;
  std::size_t size_ = 0;
};

}  // namespace esp::ftl
