// fgmFTL: the fine-grained mapping baseline (paper Sec. 2).
//
// Logical-to-physical mapping is per 4-KB sector, with a write buffer that
// merges asynchronous small writes into dense full-page programs.
// Synchronous small writes must be durable immediately: they flush as
// sparse pages (1..3 live sectors + padding), wasting page space and
// inflating GC -- the behavior Figs. 2 and 8 quantify. Memory cost is the
// FGM scheme's other drawback: one mapping entry per sector, Nsub times
// the CGM table.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ftl/block_allocator.h"
#include "ftl/fine_pool.h"
#include "ftl/ftl.h"
#include "ftl/write_buffer.h"
#include "nand/device.h"

namespace esp::ftl {

class FgmFtl : public Ftl {
 public:
  struct Config {
    std::uint64_t logical_sectors = 0;
    std::size_t gc_reserve_blocks = 8;
    std::size_t buffer_sectors = 512;     ///< write-buffer capacity (4-KB units)
    SimTime buffer_insert_us = 2.0;       ///< host-visible async-write latency
    /// Static wear leveling knobs (see CgmFtl::Config).
    std::uint32_t wl_pe_threshold = 64;
    std::uint32_t wl_check_interval = 1024;
    /// Run maintenance paths (wear leveling, and for subFTL retention scan
    /// + idle release) with the original O(device) linear scans instead of
    /// the incremental indices. Decisions are bit-identical either way;
    /// used by differential tests and CI to prove it.
    bool reference_scan_maintenance = false;
  };

  FgmFtl(nand::NandDevice& dev, const Config& config);

  IoResult write(std::uint64_t sector, std::uint32_t count, bool sync,
                 SimTime now) override;
  IoResult read(std::uint64_t sector, std::uint32_t count, SimTime now,
                std::vector<std::uint64_t>* tokens) override;
  IoResult flush(SimTime now) override;
  void trim(std::uint64_t sector, std::uint32_t count) override;

  std::uint64_t logical_sectors() const override {
    return config_.logical_sectors;
  }
  const FtlStats& stats() const override { return stats_; }
  std::uint64_t mapping_memory_bytes() const override;
  std::string name() const override { return "fgmFTL"; }
  void set_telemetry(telemetry::Sink* sink) override;
  void collect_health(std::span<telemetry::BlockHealth> out) const override {
    pool_.fill_health(out);
  }
  std::uint64_t free_blocks() const override {
    return allocator_.total_free();
  }
  void save_state(util::StateWriter& w) const override;
  void load_state(util::StateReader& r) override;

 private:
  /// Writes one extracted buffer run to flash as dense page programs.
  SimTime flush_run(const std::vector<BufferedSector>& run, SimTime now);
  void check_range(std::uint64_t sector, std::uint32_t count) const;

  nand::NandDevice& dev_;
  Config config_;
  nand::Geometry geo_;
  nand::AddressCodec codec_;
  FtlStats stats_;
  BlockAllocator allocator_;
  FinePool pool_;
  WriteBuffer buffer_;
  std::vector<std::uint64_t> l2p_;      ///< sector -> linear subpage addr
  std::vector<std::uint32_t> version_;  ///< per-sector write counter
  std::uint32_t writes_since_wl_ = 0;
  telemetry::Sink* sink_ = nullptr;
};

}  // namespace esp::ftl
