// Subpage region management: erase-free subpage programming (paper Sec. 4.2).
//
// Blocks in this pool are written one 4-KB subpage at a time using ESP.
// The writing policy follows the paper's Fig. 7:
//
//   * within each chip, one block is "active"; its pages are consumed
//     sequentially at the block's current *level* (slot index), so the 0th
//     subpages of every page fill up before any 1st subpage is touched --
//     maximizing the time for data to become obsolete before its page's
//     word line is re-programmed;
//   * when every block is sealed at its level, the block with the fewest
//     valid subpages advances to the next level; pages that still hold
//     valid data FORWARD it into the page's next slot (one subpage program,
//     no data loss -- the spX(0,0) -> spX(0,1) move of Fig. 7(c));
//   * a page never holds more than one valid subpage (the latest slot), so
//     the owning FTL's hash mapping stays small;
//   * when all levels of all blocks are exhausted, GC picks the block with
//     the fewest valid subpages: subpages that were updated at least once
//     since entering the region (hot) are rewritten into the region, the
//     rest are evicted to the full-page region (cold);
//   * a retention scan evicts subpages older than the configured age to
//     the full-page region before they outlive the reduced ESP retention
//     horizon (paper Sec. 4.3).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "ftl/block_allocator.h"
#include "ftl/retention_queue.h"
#include "ftl/types.h"
#include "ftl/wear_index.h"
#include "nand/address.h"
#include "nand/device.h"
#include "telemetry/sink.h"

namespace esp::ftl {

class SubpagePool {
 public:
  struct Config {
    std::uint64_t quota_blocks = 0;     ///< region size (paper: 20 % of flash)
    std::size_t reserve_free_blocks = 8;
    /// Floor of free blocks below which the region stops EXPANDING (taking
    /// fresh blocks) and recycles its own instead. Higher than the plain
    /// reserve so an eagerly-growing region does not consume the
    /// over-provisioning the full-page region's GC efficiency depends on.
    std::size_t expand_reserve_blocks = 16;
    SimTime retention_evict_age = 15 * sim_time::kDay;  ///< paper Sec. 4.3
    /// Blocks reclaimed per GC episode. Reclaiming several at once keeps a
    /// pool of erased blocks so the live hot set spreads across fresh
    /// level-0 slots instead of being forwarded through every level of a
    /// single block (the paper reclaims "free blocks", plural).
    std::uint32_t gc_free_target = 2;
    /// A sealed block only advances to its next level when at most this
    /// fraction of its pages holds valid data; advancing a mostly-valid
    /// block would forward nearly every page for almost no free slots.
    /// Denser blocks go to GC instead, whose hot/cold filter can actually
    /// shed load to the full-page region. Swept by bench/ablation_policy.
    double advance_max_valid_fraction = 0.25;
    /// Debug/differential mode: run the maintenance paths (retention scan,
    /// static wear leveling, idle release) with the original O(device)
    /// linear scans instead of the incremental indices. Decisions are
    /// bit-identical either way -- the scan mode exists so tests and CI can
    /// keep proving that (journal byte-compare) on every change.
    bool reference_scan_maintenance = false;
  };

  /// Mapping update: (sector, new linear subpage address).
  using PlaceFn =
      std::function<void(std::uint64_t sector, std::uint64_t new_sub_lin)>;
  /// Batched eviction to the full-page region; returns the completion
  /// time. The batch is everything one GC pass (or one retention-scanned
  /// block) sheds, so the receiver can merge sectors of the same logical
  /// page into a single read-modify-write. `retention` distinguishes
  /// age-triggered from GC cold eviction.
  using EvictFn = std::function<SimTime(std::span<const SectorWrite> batch,
                                        SimTime now, bool retention)>;
  /// Hotness query: has this sector been updated since entering the region?
  using HotFn = std::function<bool(std::uint64_t sector)>;
  /// Notification that GC kept a hot sector in the region (rewrote it).
  /// The owner resets its hot flag: the GC rewrite counts as the sector's
  /// (re-)entry into the region, so it must be updated again to stay hot.
  using KeptFn = std::function<void(std::uint64_t sector)>;

  SubpagePool(nand::NandDevice& dev, BlockAllocator& allocator,
              const Config& config, FtlStats& stats, PlaceFn place,
              EvictFn evict, HotFn hot, KeptFn kept);

  /// Stores one sector via an ESP subpage program (forwarding/advancing/
  /// collecting as needed). Returns (linear subpage address, completion).
  /// Throws std::runtime_error when the region is truly out of slots.
  std::pair<std::uint64_t, SimTime> write_sector(std::uint64_t sector,
                                                 std::uint64_t token,
                                                 SimTime now);

  /// Non-throwing variant used by GC's hot-rewrite path: nullopt when no
  /// slot is available (caller falls back to eviction).
  std::optional<std::pair<std::uint64_t, SimTime>> try_write_sector(
      std::uint64_t sector, std::uint64_t token, SimTime now);

  /// Marks the subpage at the given linear address stale.
  void invalidate(std::uint64_t sub_lin);

  /// Evicts subpages older than config().retention_evict_age.
  SimTime retention_scan(SimTime now);

  /// Erases and releases region blocks that hold no valid data (block-type
  /// conversion back to the shared pool). Called by the owner when the
  /// allocator runs low so an idle region does not tax the full-page
  /// region's over-provisioning.
  SimTime release_idle_blocks(SimTime now);

  /// Static wear leveling over the region's blocks (see
  /// FullPagePool::static_wear_level).
  SimTime static_wear_level(SimTime now, std::uint32_t pe_threshold);

  std::uint64_t blocks_in_use() const { return blocks_in_use_; }
  std::uint64_t valid_sectors() const { return valid_sectors_; }
  const Config& config() const { return config_; }

  /// For wear metrics: P/E counts of blocks currently owned by this pool.
  std::vector<std::uint32_t> owned_pe_cycles() const;

  /// Health snapshot: marks owned blocks as pool "sub" with their ESP
  /// level and valid subpage count (capacity = pages per block -- a page
  /// holds at most one valid subpage).
  void fill_health(std::span<telemetry::BlockHealth> out) const;

  /// Attaches a telemetry sink (nullptr detaches); forward migrations,
  /// GC collections and retention evictions become mechanism-lane events.
  void set_telemetry(telemetry::Sink* sink) { sink_ = sink; }

  /// Snapshot support: per-block metadata (level, cursor, live subpages
  /// and their program times), owned-block index, retention queue, wear
  /// index and idle candidates. Spare arrays and pooled scratch are NOT
  /// archived (pure allocation reuse, no behavior).
  void save_state(util::StateWriter& w) const;
  void load_state(util::StateReader& r);

 private:
  struct BlockMeta {
    bool owned = false;
    bool active = false;
    std::uint8_t level = 0;        ///< slot index currently being filled
    std::uint32_t cursor = 0;      ///< next page to consider at this level
    std::uint32_t valid_count = 0;
    std::vector<std::uint64_t> sector_of_page;  ///< live sector per page
    std::vector<bool> valid;
    std::vector<SimTime> written_at;  ///< program time of the live subpage
  };

  std::size_t block_index(std::uint32_t chip, std::uint32_t block) const {
    return static_cast<std::size_t>(chip) * geo_.blocks_per_chip + block;
  }
  /// Owned-block index maintenance: `owned_by_chip_[chip]` lists this
  /// pool's blocks in ascending block id, so GC victim search, retention
  /// scans, idle release and wear leveling touch only owned blocks instead
  /// of sweeping geo_.total_blocks() (ascending order preserves the
  /// original full-scan tie-breaking).
  void index_add(std::uint32_t chip, std::uint32_t block);
  void index_remove(std::uint32_t chip, std::uint32_t block);
  /// Finds (possibly creating/advancing) a free slot on `chip` and returns
  /// it; forwards valid data encountered on the way. Returns false when the
  /// chip has no capacity left at any level.
  bool acquire_slot(std::uint32_t chip, SimTime& t, std::uint32_t* blk,
                    std::uint32_t* page, std::uint32_t* slot);
  /// Forwards the valid subpage of (chip, blk, page) into the next slot.
  SimTime forward_page(std::uint32_t chip, std::uint32_t blk,
                       std::uint32_t page, std::uint32_t to_slot, SimTime now);
  /// One GC pass. With `prefer_chip` set, the victim is chosen on that
  /// chip when it owns any collectable block (keeps per-chip write points
  /// alive so the multi-channel pipeline stays balanced); otherwise the
  /// region-wide minimum-valid block is collected.
  SimTime collect(SimTime now,
                  std::optional<std::uint32_t> prefer_chip = std::nullopt);
  /// Relocates/evicts every valid subpage of the block, erases it, and
  /// returns it to the allocator (shared by GC and static wear leveling).
  SimTime collect_block(std::size_t idx, SimTime now, bool for_wear_leveling);
  bool can_alloc_fresh() const;
  /// Records the block as a wear-leveling candidate and, when it holds no
  /// valid data, an idle-release candidate. Called at every active ->
  /// sealed transition and whenever a non-active block's valid_count
  /// reaches zero (invalidate / retention eviction).
  void note_sealed(std::size_t idx);
  void note_idle_candidate(std::size_t idx);
  /// BlockMeta per-page array recycling: on release the arrays move into
  /// spare_meta_ (capacity preserved); on (re)allocation they move back and
  /// are assign()ed to geometry size. Bounds allocation churn to the peak
  /// number of simultaneously owned blocks instead of one heap cycle per
  /// GC pass.
  void retire_meta_arrays(BlockMeta& m);
  void init_meta_arrays(BlockMeta& m);
  /// Erases + releases one garbage-only block (shared body of the scan and
  /// indexed release_idle_blocks variants).
  SimTime release_idle_block(std::uint32_t chip, std::uint32_t blk,
                             SimTime now);
  SimTime retention_scan_reference(SimTime now);
  SimTime retention_scan_indexed(SimTime now);
  /// Evicts the expired pages of one block (identical op sequence for both
  /// retention variants). `t` is the running completion time.
  SimTime retention_evict_pages(std::uint32_t chip, std::uint32_t blk,
                                std::span<const std::uint32_t> pages,
                                SimTime t);

  nand::NandDevice& dev_;
  BlockAllocator& allocator_;
  Config config_;
  FtlStats& stats_;
  PlaceFn place_;
  EvictFn evict_;
  HotFn hot_;
  KeptFn kept_;
  nand::Geometry geo_;
  nand::AddressCodec codec_;

  std::vector<BlockMeta> meta_;
  /// Blocks owned by this pool, per chip, ascending block id.
  std::vector<std::vector<std::uint32_t>> owned_by_chip_;
  std::vector<std::optional<std::uint32_t>> active_block_;  ///< per chip
  /// Incremental maintenance indices (see docs/PERFORMANCE.md). The
  /// retention queue records every subpage program; the wear index records
  /// every seal; idle_candidates_ records every transition of a non-active
  /// block to zero valid data. All three tolerate stale entries -- the
  /// consumers re-validate against meta_ -- so no eager removal is needed
  /// on invalidate/GC.
  RetentionQueue retention_queue_;
  WearIndex wear_index_;
  std::vector<std::size_t> idle_candidates_;
  /// Recycled per-page arrays of released blocks (see retire_meta_arrays).
  struct SpareArrays {
    std::vector<std::uint64_t> sector_of_page;
    std::vector<bool> valid;
    std::vector<SimTime> written_at;
  };
  std::vector<SpareArrays> spare_meta_;
  /// Pooled scratch (capacity persists across passes; no per-pass heap
  /// churn). GC and retention never nest within this pool, so each path
  /// owns its vector outright.
  std::vector<SectorWrite> gc_evictions_;
  std::vector<SectorWrite> retention_evictions_;
  std::vector<RetentionQueue::Entry> retention_expired_;
  std::vector<std::uint32_t> retention_pages_;
  std::uint32_t rr_chip_ = 0;
  std::uint64_t blocks_in_use_ = 0;
  std::uint64_t valid_sectors_ = 0;
  bool in_gc_ = false;
  std::uint32_t gc_dest_allocs_ = 0;  ///< fresh blocks opened by this GC pass
  telemetry::Sink* sink_ = nullptr;
};

}  // namespace esp::ftl
