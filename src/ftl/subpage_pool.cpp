#include "ftl/subpage_pool.h"

#include <algorithm>
#include <stdexcept>

#include "util/logger.h"

namespace esp::ftl {

SubpagePool::SubpagePool(nand::NandDevice& dev, BlockAllocator& allocator,
                         const Config& config, FtlStats& stats, PlaceFn place,
                         EvictFn evict, HotFn hot, KeptFn kept)
    : dev_(dev),
      allocator_(allocator),
      config_(config),
      stats_(stats),
      place_(std::move(place)),
      evict_(std::move(evict)),
      hot_(std::move(hot)),
      kept_(std::move(kept)),
      geo_(dev.geometry()),
      codec_(geo_),
      meta_(geo_.total_blocks()),
      owned_by_chip_(geo_.total_chips()),
      active_block_(geo_.total_chips()),
      // Bucket width: a fraction of the eviction age so the boundary
      // bucket a scan re-examines holds only the youngest ~3% of the
      // retention window's writes.
      retention_queue_(config.retention_evict_age / 32.0) {
  if (!place_ || !evict_ || !hot_ || !kept_)
    throw std::invalid_argument("SubpagePool: all callbacks required");
  if (config_.quota_blocks == 0)
    throw std::invalid_argument("SubpagePool: quota_blocks must be > 0");
}

void SubpagePool::index_add(std::uint32_t chip, std::uint32_t block) {
  auto& owned = owned_by_chip_[chip];
  owned.insert(std::lower_bound(owned.begin(), owned.end(), block), block);
}

void SubpagePool::index_remove(std::uint32_t chip, std::uint32_t block) {
  auto& owned = owned_by_chip_[chip];
  const auto it = std::lower_bound(owned.begin(), owned.end(), block);
  if (it != owned.end() && *it == block) owned.erase(it);
}

void SubpagePool::note_sealed(std::size_t idx) {
  const BlockMeta& m = meta_[idx];
  const auto chip = static_cast<std::uint32_t>(idx / geo_.blocks_per_chip);
  const auto blk = static_cast<std::uint32_t>(idx % geo_.blocks_per_chip);
  wear_index_.push(dev_.block(chip, blk).pe_cycles(), idx);
  if (m.valid_count == 0) note_idle_candidate(idx);
}

void SubpagePool::note_idle_candidate(std::size_t idx) {
  idle_candidates_.push_back(idx);
}

void SubpagePool::retire_meta_arrays(BlockMeta& m) {
  auto& spare = spare_meta_.emplace_back();
  spare.sector_of_page = std::move(m.sector_of_page);
  spare.valid = std::move(m.valid);
  spare.written_at = std::move(m.written_at);
}

void SubpagePool::init_meta_arrays(BlockMeta& m) {
  if (!spare_meta_.empty()) {
    auto& spare = spare_meta_.back();
    m.sector_of_page = std::move(spare.sector_of_page);
    m.valid = std::move(spare.valid);
    m.written_at = std::move(spare.written_at);
    spare_meta_.pop_back();
  }
  m.sector_of_page.assign(geo_.pages_per_block, nand::kUnmapped);
  m.valid.assign(geo_.pages_per_block, false);
  m.written_at.assign(geo_.pages_per_block, 0.0);
}

bool SubpagePool::can_alloc_fresh() const {
  // During GC the destination block is the paper's "free block reserved for
  // garbage collection": ONE extra block per pass, beyond quota if needed
  // (the victim's erase at the end of the pass restores the balance). It
  // may dip halfway into the allocator reserve -- the other half stays
  // available for the full-page region's own GC, which the eviction
  // fallback depends on.
  if (in_gc_)
    return gc_dest_allocs_ < 1 &&
           allocator_.total_free() > config_.reserve_free_blocks / 2;
  return blocks_in_use_ < config_.quota_blocks &&
         allocator_.total_free() >
             std::max(config_.reserve_free_blocks,
                      config_.expand_reserve_blocks);
}

SimTime SubpagePool::forward_page(std::uint32_t chip, std::uint32_t blk,
                                  std::uint32_t page, std::uint32_t to_slot,
                                  SimTime now) {
  const telemetry::CauseScope cause(
      sink_, telemetry::Cause::kForwardMigration, to_slot, now);
  BlockMeta& m = meta_[block_index(chip, blk)];
  const nand::PageAddr pa{chip, blk, page};
  // The live data sits in the page's latest programmed slot.
  const auto from_slot = to_slot - 1;
  const auto read = dev_.read_subpage(nand::SubpageAddr{pa, from_slot}, now);
  ++stats_.flash_reads;
  if (read.status != nand::ReadStatus::kOk) ++stats_.read_failures;
  const auto ack =
      dev_.program_subpage(nand::SubpageAddr{pa, to_slot}, read.token,
                           read.done);
  ++stats_.flash_prog_sub;
  ++stats_.forward_migrations;
  stats_.small_extra_flash_bytes += geo_.subpage_bytes();
  m.written_at[page] = read.done;
  if (!config_.reference_scan_maintenance)
    retention_queue_.push(block_index(chip, blk), page, read.done);
  place_(m.sector_of_page[page],
         codec_.encode_subpage(nand::SubpageAddr{pa, to_slot}));
  if (sink_ && sink_->wants_op(telemetry::OpKind::kForwardMigration))
    sink_->record_op(
        {telemetry::OpKind::kForwardMigration, now, ack.done, to_slot});
  return ack.done;
}

bool SubpagePool::acquire_slot(std::uint32_t chip, SimTime& t,
                               std::uint32_t* blk, std::uint32_t* page,
                               std::uint32_t* slot) {
  for (;;) {
    auto& active = active_block_[chip];
    if (active) {
      BlockMeta& m = meta_[block_index(chip, *active)];
      while (m.cursor < geo_.pages_per_block) {
        const std::uint32_t p = m.cursor;
        if (m.valid[p]) {
          // Valid data in the way: forward it into this level's slot and
          // keep walking (the paper's Fig. 7(c) migration).
          t = forward_page(chip, *active, p, m.level, t);
          ++m.cursor;
          continue;
        }
        *blk = *active;
        *page = p;
        *slot = m.level;
        ++m.cursor;
        return true;
      }
      m.active = false;  // sealed at this level
      note_sealed(block_index(chip, *active));
      active.reset();
    }
    // Prefer opening a fresh block (keeps every block's 0th subpages in
    // play before any 1st subpage is written).
    if (can_alloc_fresh()) {
      if (const auto fresh = allocator_.alloc(chip)) {
        if (in_gc_) ++gc_dest_allocs_;
        BlockMeta& m = meta_[block_index(chip, *fresh)];
        m.owned = true;
        index_add(chip, *fresh);
        m.active = true;
        m.level = 0;
        m.cursor = 0;
        m.valid_count = 0;
        init_meta_arrays(m);
        active = *fresh;
        ++blocks_in_use_;
        if (sink_)
          sink_->record_block({telemetry::BlockEventKind::kAllocated, chip,
                               *fresh, "sub", 0, 0,
                               dev_.block(chip, *fresh).pe_cycles(), t});
        continue;
      }
    }
    // Advance the best sealed block on this chip to its next level:
    // a block with no valid subpages first, otherwise fewest valid. Blocks
    // denser than the advance threshold are left for GC -- forwarding
    // nearly-full blocks costs a subpage write per page for almost no free
    // slots, while GC's hot/cold filter can demote the data instead.
    const auto advance_limit = static_cast<std::uint32_t>(
        config_.advance_max_valid_fraction * geo_.pages_per_block);
    std::optional<std::uint32_t> best;
    std::uint32_t best_valid = ~0u;
    for (const std::uint32_t b : owned_by_chip_[chip]) {
      const BlockMeta& m = meta_[block_index(chip, b)];
      if (m.active) continue;
      if (m.level + 1u >= geo_.subpages_per_page) continue;  // maxed out
      if (m.valid_count > advance_limit) continue;           // too dense
      if (m.valid_count < best_valid) {
        best_valid = m.valid_count;
        best = b;
        if (best_valid == 0) break;
      }
    }
    if (!best) return false;  // chip exhausted at every level
    BlockMeta& m = meta_[block_index(chip, *best)];
    ++m.level;
    m.cursor = 0;
    m.active = true;
    active = *best;
    if (sink_)
      sink_->record_block({telemetry::BlockEventKind::kLevelAdvanced, chip,
                           *best, "sub", m.level, m.valid_count,
                           dev_.block(chip, *best).pe_cycles(), t});
  }
}

std::pair<std::uint64_t, SimTime> SubpagePool::write_sector(
    std::uint64_t sector, std::uint64_t token, SimTime now) {
  if (auto placed = try_write_sector(sector, token, now)) return *placed;
  throw std::runtime_error(
      "SubpagePool: no free subpage slot available after GC");
}

std::optional<std::pair<std::uint64_t, SimTime>> SubpagePool::try_write_sector(
    std::uint64_t sector, std::uint64_t token, SimTime now) {
  auto program_at = [&](std::uint32_t chip, std::uint32_t blk,
                        std::uint32_t page, std::uint32_t slot, SimTime t)
      -> std::pair<std::uint64_t, SimTime> {
    rr_chip_ = (chip + 1) % geo_.total_chips();
    const nand::PageAddr pa{chip, blk, page};
    const auto ack = dev_.program_subpage(nand::SubpageAddr{pa, slot}, token, t);
    ++stats_.flash_prog_sub;
    BlockMeta& m = meta_[block_index(chip, blk)];
    m.sector_of_page[page] = sector;
    m.valid[page] = true;
    m.written_at[page] = t;
    if (!config_.reference_scan_maintenance)
      retention_queue_.push(block_index(chip, blk), page, t);
    ++m.valid_count;
    ++valid_sectors_;
    const std::uint64_t sub_lin =
        codec_.encode_subpage(nand::SubpageAddr{pa, slot});
    place_(sector, sub_lin);
    return {sub_lin, ack.done};
  };

  for (int round = 0; round < 2; ++round) {
    for (std::uint32_t attempt = 0; attempt < geo_.total_chips(); ++attempt) {
      const std::uint32_t chip = (rr_chip_ + attempt) % geo_.total_chips();
      SimTime t = now;
      std::uint32_t blk = 0, page = 0, slot = 0;
      if (acquire_slot(chip, t, &blk, &page, &slot))
        return program_at(chip, blk, page, slot, t);
      // The rotation's primary chip is exhausted: reclaim on THAT chip so
      // writes keep striping over every channel instead of piling onto the
      // survivors (per-chip write points are the parallelism the paper's
      // multi-channel design depends on).
      if (!in_gc_ && round == 0 && attempt == 0) {
        const SimTime after = collect(now, chip);
        if (after != now) {
          now = after;
          t = now;
          if (acquire_slot(chip, t, &blk, &page, &slot))
            return program_at(chip, blk, page, slot, t);
        }
      }
    }
    if (round == 0 && !in_gc_) {
      // Every chip is exhausted: reclaim a small pool of erased blocks so
      // subsequent writes spread across fresh level-0 slots.
      for (std::uint32_t i = 0; i < std::max(1u, config_.gc_free_target);
           ++i) {
        const SimTime after = collect(now);
        if (after == now) break;  // no more victims
        now = after;
      }
    } else {
      break;
    }
  }
  return std::nullopt;
}

void SubpagePool::invalidate(std::uint64_t sub_lin) {
  const nand::SubpageAddr addr = codec_.decode_subpage(sub_lin);
  BlockMeta& m = meta_[block_index(addr.page.chip, addr.page.block)];
  if (!m.owned || !m.valid[addr.page.page])
    throw std::logic_error("SubpagePool::invalidate: page not valid");
  // Guard against stale pointers: the live copy must be the page's latest
  // programmed slot.
  const auto programmed =
      dev_.block(addr.page.chip, addr.page.block)
          .slots_programmed(addr.page.page);
  if (addr.slot + 1 != programmed)
    throw std::logic_error(
        "SubpagePool::invalidate: address does not match live slot");
  m.valid[addr.page.page] = false;
  m.sector_of_page[addr.page.page] = nand::kUnmapped;
  --m.valid_count;
  --valid_sectors_;
  if (m.valid_count == 0 && !m.active)
    note_idle_candidate(block_index(addr.page.chip, addr.page.block));
}

SimTime SubpagePool::collect(SimTime now,
                             std::optional<std::uint32_t> prefer_chip) {
  // Victim: owned, non-active block with the fewest valid subpages,
  // restricted to prefer_chip when it has any candidate.
  std::optional<std::size_t> victim_idx;
  std::uint32_t best_valid = ~0u;
  auto scan_chip = [&](std::uint32_t chip) {
    for (const std::uint32_t b : owned_by_chip_[chip]) {
      const std::size_t idx = block_index(chip, b);
      const BlockMeta& m = meta_[idx];
      if (m.active) continue;
      if (m.valid_count < best_valid) {
        best_valid = m.valid_count;
        victim_idx = idx;
      }
    }
  };
  if (prefer_chip) scan_chip(*prefer_chip);
  if (!victim_idx)
    for (std::uint32_t chip = 0; chip < geo_.total_chips(); ++chip)
      scan_chip(chip);
  if (!victim_idx) return now;
  ++stats_.gc_invocations;
  return collect_block(*victim_idx, now, /*for_wear_leveling=*/false);
}

SimTime SubpagePool::collect_block(std::size_t idx, SimTime now,
                                   bool for_wear_leveling) {
  const MaintenanceTimer timer(stats_, nullptr, &stats_.maint_gc_ns);
  in_gc_ = true;
  gc_dest_allocs_ = 0;

  const auto chip = static_cast<std::uint32_t>(idx / geo_.blocks_per_chip);
  const auto blk = static_cast<std::uint32_t>(idx % geo_.blocks_per_chip);
  // Everything in this pass -- forwards, hot rewrites, evictions into the
  // full-page region, the final erase -- attributes to this GC episode.
  const telemetry::CauseScope cause(
      sink_,
      for_wear_leveling ? telemetry::Cause::kWearLevel
                        : telemetry::Cause::kGcCopy,
      idx, now);
  BlockMeta& victim = meta_[idx];
  // Lock the victim so the hot-rewrite path below can neither advance it
  // nor write into it -- its erase is already committed.
  victim.active = true;
  SimTime t = now;
  std::uint64_t kept_sectors = 0;
  std::vector<SectorWrite>& evictions = gc_evictions_;
  evictions.clear();
  evictions.reserve(victim.valid_count);
  for (std::uint32_t page = 0; page < geo_.pages_per_block; ++page) {
    if (!victim.valid[page]) continue;
    const std::uint64_t sector = victim.sector_of_page[page];
    const auto live_slot = dev_.block(chip, blk).slots_programmed(page) - 1;
    const auto read = dev_.read_subpage(
        nand::SubpageAddr{nand::PageAddr{chip, blk, page}, live_slot}, t);
    ++stats_.flash_reads;
    if (read.status != nand::ReadStatus::kOk) ++stats_.read_failures;
    victim.valid[page] = false;
    victim.sector_of_page[page] = nand::kUnmapped;
    --victim.valid_count;
    --valid_sectors_;
    if (hot_(sector)) {
      // Updated since entering the region: likely to be updated again --
      // keep it close (rewrite into the region). If the region is too
      // tight to accept it, demote it to the full-page region instead.
      if (const auto placed =
              try_write_sector(sector, read.token, read.done)) {
        if (for_wear_leveling)
          ++stats_.wear_level_relocations;
        else
          ++stats_.gc_copy_sectors;
        stats_.small_extra_flash_bytes += geo_.subpage_bytes();
        kept_(sector);  // must be updated again to stay hot next time
        ++kept_sectors;
        t = placed->second;
        continue;
      }
    }
    // Never updated here (or region full): cold -- batch for eviction to
    // the full-page region, merged per logical page by the receiver.
    ++stats_.cold_evictions;
    evictions.push_back(SectorWrite{sector, read.token});
    t = std::max(t, read.done);
  }
  if (!evictions.empty()) t = evict_(evictions, t, /*retention=*/false);

  const auto ack = dev_.erase_block(chip, blk, t);
  ++stats_.flash_erases;
  if (sink_) {
    const std::uint32_t pe = dev_.block(chip, blk).pe_cycles();
    sink_->record_block({telemetry::BlockEventKind::kErased, chip, blk, "sub",
                         victim.level, victim.valid_count, pe, ack.done});
    sink_->record_block({telemetry::BlockEventKind::kRetired, chip, blk,
                         "sub", 0, 0, pe, ack.done});
  }
  victim.owned = false;
  index_remove(chip, blk);
  victim.active = false;
  retire_meta_arrays(victim);
  --blocks_in_use_;
  allocator_.release(chip, blk, dev_.block(chip, blk).pe_cycles());
  in_gc_ = false;
  if (sink_) {
    const auto copy_kind = for_wear_leveling ? telemetry::OpKind::kWearLevel
                                             : telemetry::OpKind::kGcCopy;
    if (sink_->wants_op(copy_kind))
      sink_->record_op({copy_kind, now, ack.done, kept_sectors,
                        evictions.size()});
  }
  ESP_LOG_DEBUG("%s collected subpage block chip=%u blk=%u kept=%llu "
                "evicted=%zu",
                for_wear_leveling ? "wear-level" : "gc",
                static_cast<unsigned>(chip), static_cast<unsigned>(blk),
                static_cast<unsigned long long>(kept_sectors),
                evictions.size());
  return ack.done;
}

SimTime SubpagePool::release_idle_block(std::uint32_t chip, std::uint32_t b,
                                        SimTime now) {
  BlockMeta& m = meta_[block_index(chip, b)];
  // Keep pristine never-programmed blocks? They do not exist here: a
  // block is only owned once it has received writes.
  ++stats_.gc_invocations;  // garbage-only collection, zero copies
  const telemetry::CauseScope cause(sink_, telemetry::Cause::kGcCopy,
                                    block_index(chip, b), now);
  const auto ack = dev_.erase_block(chip, b, now);
  ++stats_.flash_erases;
  if (sink_) {
    const std::uint32_t pe = dev_.block(chip, b).pe_cycles();
    sink_->record_block({telemetry::BlockEventKind::kErased, chip, b, "sub",
                         m.level, 0, pe, ack.done});
    sink_->record_block({telemetry::BlockEventKind::kRetired, chip, b, "sub",
                         0, 0, pe, ack.done});
  }
  m.owned = false;
  index_remove(chip, b);
  retire_meta_arrays(m);
  --blocks_in_use_;
  allocator_.release(chip, b, dev_.block(chip, b).pe_cycles());
  return ack.done;
}

SimTime SubpagePool::release_idle_blocks(SimTime now) {
  const MaintenanceTimer timer(stats_, &stats_.maint_release_idle_calls,
                               &stats_.maint_release_idle_ns);
  if (config_.reference_scan_maintenance) {
    // Original O(owned) sweep, kept as the differential baseline.
    for (std::uint32_t chip = 0; chip < geo_.total_chips(); ++chip) {
      auto& owned = owned_by_chip_[chip];
      for (std::size_t i = 0; i < owned.size();) {
        const std::uint32_t b = owned[i];
        const BlockMeta& m = meta_[block_index(chip, b)];
        if (m.active || m.valid_count != 0) {
          ++i;
          continue;
        }
        now = release_idle_block(chip, b, now);  // removes owned[i]
      }
    }
    return now;
  }
  // Indexed: only blocks recorded at an idle transition since the last call
  // are candidates. Sorting ascending reproduces the sweep's
  // chip-asc/block-asc release order; stale entries (re-activated, refilled
  // or released blocks) fail re-validation and drop out. Blocks skipped
  // here are re-recorded at their next idle transition, so clearing the
  // list afterwards loses nothing.
  std::sort(idle_candidates_.begin(), idle_candidates_.end());
  idle_candidates_.erase(
      std::unique(idle_candidates_.begin(), idle_candidates_.end()),
      idle_candidates_.end());
  for (const std::size_t idx : idle_candidates_) {
    const BlockMeta& m = meta_[idx];
    if (!m.owned || m.active || m.valid_count != 0) continue;
    now = release_idle_block(
        static_cast<std::uint32_t>(idx / geo_.blocks_per_chip),
        static_cast<std::uint32_t>(idx % geo_.blocks_per_chip), now);
  }
  idle_candidates_.clear();
  return now;
}

SimTime SubpagePool::static_wear_level(SimTime now,
                                       std::uint32_t pe_threshold) {
  const MaintenanceTimer timer(stats_, &stats_.maint_wear_level_calls,
                               &stats_.maint_wear_level_ns);
  std::optional<std::size_t> coldest;
  std::uint32_t coldest_pe = ~0u;
  // Device-wide maximum is tracked monotonically at erase time; the coldest
  // candidate comes from the wear index (or, in reference mode, a sweep
  // over this pool's own blocks).
  const std::uint32_t max_pe = dev_.max_pe_cycles();
  if (config_.reference_scan_maintenance) {
    for (std::uint32_t chip = 0; chip < geo_.total_chips(); ++chip) {
      for (const std::uint32_t b : owned_by_chip_[chip]) {
        const std::size_t idx = block_index(chip, b);
        if (meta_[idx].active) continue;
        const std::uint32_t pe = dev_.block(chip, b).pe_cycles();
        if (pe < coldest_pe) {
          coldest_pe = pe;
          coldest = idx;
        }
      }
    }
  } else {
    const auto top = wear_index_.peek([&](std::uint32_t pe, std::size_t idx) {
      const BlockMeta& m = meta_[idx];
      if (!m.owned || m.active) return false;
      const auto chip = static_cast<std::uint32_t>(idx / geo_.blocks_per_chip);
      const auto blk = static_cast<std::uint32_t>(idx % geo_.blocks_per_chip);
      return dev_.block(chip, blk).pe_cycles() == pe;
    });
    if (top) {
      coldest = top->idx;
      coldest_pe = top->pe;
    }
  }
  if (!coldest || max_pe - coldest_pe <= pe_threshold) return now;
  if (allocator_.total_free() == 0) return now;
  return collect_block(*coldest, now, /*for_wear_leveling=*/true);
}

SimTime SubpagePool::retention_evict_pages(std::uint32_t chip, std::uint32_t b,
                                           std::span<const std::uint32_t> pages,
                                           SimTime t) {
  BlockMeta& m = meta_[block_index(chip, b)];
  const SimTime block_start = t;
  retention_evictions_.clear();
  for (const std::uint32_t page : pages) {
    if (!m.valid[page]) continue;  // duplicate queue entries
    const std::uint64_t sector = m.sector_of_page[page];
    const auto live_slot = dev_.block(chip, b).slots_programmed(page) - 1;
    const auto read = dev_.read_subpage(
        nand::SubpageAddr{nand::PageAddr{chip, b, page}, live_slot}, t);
    ++stats_.flash_reads;
    if (read.status != nand::ReadStatus::kOk) ++stats_.read_failures;
    m.valid[page] = false;
    m.sector_of_page[page] = nand::kUnmapped;
    --m.valid_count;
    --valid_sectors_;
    ++stats_.retention_evictions;
    retention_evictions_.push_back(SectorWrite{sector, read.token});
    t = std::max(t, read.done);
  }
  if (!retention_evictions_.empty()) {
    const telemetry::CauseScope cause(sink_, telemetry::Cause::kRetentionEvict,
                                      block_index(chip, b), block_start);
    t = evict_(retention_evictions_, t, /*retention=*/true);
    if (sink_)
      sink_->record_op({telemetry::OpKind::kRetentionEvict, block_start, t,
                        retention_evictions_.size()});
  }
  if (m.valid_count == 0 && !m.active) note_idle_candidate(block_index(chip, b));
  return t;
}

SimTime SubpagePool::retention_scan(SimTime now) {
  const MaintenanceTimer timer(stats_, &stats_.maint_retention_calls,
                               &stats_.maint_retention_ns);
  return config_.reference_scan_maintenance ? retention_scan_reference(now)
                                            : retention_scan_indexed(now);
}

SimTime SubpagePool::retention_scan_reference(SimTime now) {
  SimTime t = now;
  for (std::uint32_t chip = 0; chip < geo_.total_chips(); ++chip) {
    for (const std::uint32_t b : owned_by_chip_[chip]) {
      BlockMeta& m = meta_[block_index(chip, b)];
      if (m.valid_count == 0) continue;
      retention_pages_.clear();
      for (std::uint32_t page = 0; page < geo_.pages_per_block; ++page) {
        if (!m.valid[page]) continue;
        if (now - m.written_at[page] <= config_.retention_evict_age) continue;
        retention_pages_.push_back(page);
      }
      if (!retention_pages_.empty())
        t = retention_evict_pages(chip, b, retention_pages_, t);
    }
  }
  return t;
}

SimTime SubpagePool::retention_scan_indexed(SimTime now) {
  retention_expired_.clear();
  // Exact same age comparison as the reference walk -- the conservative
  // bucket cutoff only bounds which buckets are examined.
  retention_queue_.collect_expired(
      now - config_.retention_evict_age,
      [&](SimTime written_at) {
        return now - written_at > config_.retention_evict_age;
      },
      retention_expired_);
  // Drop stale entries: the decision depends only on (owned, valid,
  // written_at), so an entry matching all three is exactly a page the
  // reference walk would evict now.
  std::size_t kept = 0;
  for (const auto& e : retention_expired_) {
    const BlockMeta& m = meta_[e.block_idx];
    if (m.owned && m.valid[e.page] && m.written_at[e.page] == e.written_at)
      retention_expired_[kept++] = e;
  }
  retention_expired_.resize(kept);
  // (block, page) ascending == the reference walk's chip-asc/block-asc/
  // page-asc eviction order; grouping per block reproduces its per-block
  // eviction batches.
  std::sort(retention_expired_.begin(), retention_expired_.end(),
            [](const RetentionQueue::Entry& a, const RetentionQueue::Entry& b) {
              return a.block_idx != b.block_idx ? a.block_idx < b.block_idx
                                                : a.page < b.page;
            });
  SimTime t = now;
  for (std::size_t i = 0; i < retention_expired_.size();) {
    const std::size_t idx = retention_expired_[i].block_idx;
    retention_pages_.clear();
    for (; i < retention_expired_.size() &&
           retention_expired_[i].block_idx == idx;
         ++i)
      retention_pages_.push_back(retention_expired_[i].page);
    t = retention_evict_pages(
        static_cast<std::uint32_t>(idx / geo_.blocks_per_chip),
        static_cast<std::uint32_t>(idx % geo_.blocks_per_chip),
        retention_pages_, t);
  }
  return t;
}

std::vector<std::uint32_t> SubpagePool::owned_pe_cycles() const {
  std::vector<std::uint32_t> pes;
  for (std::uint32_t chip = 0; chip < geo_.total_chips(); ++chip) {
    pes.reserve(pes.size() + owned_by_chip_[chip].size());
    for (const std::uint32_t b : owned_by_chip_[chip])
      pes.push_back(dev_.block(chip, b).pe_cycles());
  }
  return pes;
}

void SubpagePool::fill_health(
    std::span<telemetry::BlockHealth> out) const {
  for (std::uint32_t chip = 0; chip < geo_.total_chips(); ++chip) {
    for (const std::uint32_t blk : owned_by_chip_[chip]) {
      const std::size_t idx = block_index(chip, blk);
      if (idx >= out.size()) continue;
      out[idx].pool = static_cast<std::uint8_t>(telemetry::HealthPool::kSub);
      out[idx].level = meta_[idx].level;
      out[idx].valid = meta_[idx].valid_count;
      out[idx].valid_cap = geo_.pages_per_block;
    }
  }
}

void SubpagePool::save_state(util::StateWriter& w) const {
  w.tag("SPOL");
  w.u64(meta_.size());
  for (const BlockMeta& m : meta_) {
    w.b(m.owned);
    w.b(m.active);
    w.u8(m.level);
    w.u32(m.cursor);
    w.u32(m.valid_count);
    w.pod_vec(m.sector_of_page);
    w.bool_vec(m.valid);
    w.pod_vec(m.written_at);
  }
  w.u64(owned_by_chip_.size());
  for (const auto& owned : owned_by_chip_) w.pod_vec(owned);
  w.u64(active_block_.size());
  for (const auto& ab : active_block_) {
    w.b(ab.has_value());
    w.u32(ab.value_or(0));
  }
  retention_queue_.save_state(w);
  wear_index_.save_state(w);
  w.pod_vec(idle_candidates_);
  w.u32(rr_chip_);
  w.u64(blocks_in_use_);
  w.u64(valid_sectors_);
}

void SubpagePool::load_state(util::StateReader& r) {
  r.tag("SPOL");
  if (r.u64() != meta_.size())
    throw std::runtime_error("SubpagePool::load_state: block count mismatch");
  for (BlockMeta& m : meta_) {
    m.owned = r.b();
    m.active = r.b();
    m.level = r.u8();
    m.cursor = r.u32();
    m.valid_count = r.u32();
    r.pod_vec(m.sector_of_page);
    r.bool_vec(m.valid);
    r.pod_vec(m.written_at);
  }
  if (r.u64() != owned_by_chip_.size())
    throw std::runtime_error("SubpagePool::load_state: chip count mismatch");
  for (auto& owned : owned_by_chip_) r.pod_vec(owned);
  if (r.u64() != active_block_.size())
    throw std::runtime_error("SubpagePool::load_state: chip count mismatch");
  for (auto& ab : active_block_) {
    const bool has = r.b();
    const std::uint32_t blk = r.u32();
    ab = has ? std::optional<std::uint32_t>(blk) : std::nullopt;
  }
  retention_queue_.load_state(r);
  wear_index_.load_state(r);
  r.pod_vec(idle_candidates_);
  rr_chip_ = r.u32();
  blocks_in_use_ = r.u64();
  valid_sectors_ = r.u64();
  spare_meta_.clear();
  in_gc_ = false;
  gc_dest_allocs_ = 0;
}

}  // namespace esp::ftl
