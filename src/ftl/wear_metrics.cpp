#include "ftl/wear_metrics.h"

#include <cstdio>

#include "util/stats.h"

namespace esp::ftl {

std::string WearSummary::describe() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "P/E min=%u max=%u mean=%.1f stddev=%.2f (imbalance %.3f), "
                "%llu erases total",
                min_pe, max_pe, mean_pe, stddev_pe, imbalance(),
                static_cast<unsigned long long>(total_erases));
  return buf;
}

WearSummary measure_wear(const nand::NandDevice& dev) {
  const auto& geo = dev.geometry();
  util::RunningStats stats;
  for (std::uint32_t chip = 0; chip < geo.total_chips(); ++chip)
    for (std::uint32_t blk = 0; blk < geo.blocks_per_chip; ++blk)
      stats.add(static_cast<double>(dev.block(chip, blk).pe_cycles()));

  WearSummary summary;
  summary.min_pe = static_cast<std::uint32_t>(stats.min());
  summary.max_pe = static_cast<std::uint32_t>(stats.max());
  summary.mean_pe = stats.mean();
  summary.stddev_pe = stats.stddev();
  summary.total_erases = dev.counters().erases;
  return summary;
}

}  // namespace esp::ftl
