#include "ftl/fine_pool.h"

#include <algorithm>
#include <stdexcept>

namespace esp::ftl {

FinePool::FinePool(nand::NandDevice& dev, BlockAllocator& allocator,
                   const Config& config, FtlStats& stats, PlaceFn place,
                   EvictFn evict_on_gc)
    : dev_(dev),
      allocator_(allocator),
      config_(config),
      stats_(stats),
      place_(std::move(place)),
      evict_on_gc_(std::move(evict_on_gc)),
      geo_(dev.geometry()),
      codec_(geo_),
      meta_(geo_.total_blocks()),
      active_block_(geo_.total_chips()) {
  if (!place_) throw std::invalid_argument("FinePool: place callback required");
}

void FinePool::retire_meta_arrays(BlockMeta& m) {
  auto& spare = spare_meta_.emplace_back();
  spare.sector_of_slot = std::move(m.sector_of_slot);
  spare.valid = std::move(m.valid);
}

void FinePool::init_meta_arrays(BlockMeta& m) {
  if (!spare_meta_.empty()) {
    auto& spare = spare_meta_.back();
    m.sector_of_slot = std::move(spare.sector_of_slot);
    m.valid = std::move(spare.valid);
    spare_meta_.pop_back();
  }
  const std::size_t slots =
      static_cast<std::size_t>(geo_.pages_per_block) * geo_.subpages_per_page;
  m.sector_of_slot.assign(slots, nand::kUnmapped);
  m.valid.assign(slots, false);
}

bool FinePool::space_pressure() const {
  return allocator_.total_free() <= config_.reserve_free_blocks ||
         blocks_in_use_ >= config_.quota_blocks;
}

bool FinePool::ensure_active(std::uint32_t* chip_out, SimTime now) {
  for (std::uint32_t attempt = 0; attempt < geo_.total_chips(); ++attempt) {
    const std::uint32_t chip = (rr_chip_ + attempt) % geo_.total_chips();
    auto& active = active_block_[chip];
    if (active) {
      BlockMeta& m = meta_[block_index(chip, *active)];
      if (m.next_page < geo_.pages_per_block) {
        *chip_out = chip;
        rr_chip_ = (chip + 1) % geo_.total_chips();
        return true;
      }
      m.active = false;
      push_victim_candidate(block_index(chip, *active));
      wear_index_.push(dev_.block(chip, *active).pe_cycles(),
                       block_index(chip, *active));
      active.reset();
    }
    const auto blk = allocator_.alloc(chip);
    if (!blk) continue;
    BlockMeta& m = meta_[block_index(chip, *blk)];
    m.owned = true;
    m.active = true;
    m.next_page = 0;
    m.valid_count = 0;
    init_meta_arrays(m);
    active = *blk;
    ++blocks_in_use_;
    if (sink_)
      sink_->record_block({telemetry::BlockEventKind::kAllocated, chip, *blk,
                           "fine", 0, 0, dev_.block(chip, *blk).pe_cycles(),
                           now});
    *chip_out = chip;
    rr_chip_ = (chip + 1) % geo_.total_chips();
    return true;
  }
  return false;
}

SimTime FinePool::write_group(std::span<const SectorWrite> group, SimTime now) {
  if (group.empty() || group.size() > geo_.subpages_per_page)
    throw std::logic_error("FinePool::write_group: bad group size");
  if (!in_gc_) now = maybe_gc(now);
  std::uint32_t chip = 0;
  if (!ensure_active(&chip, now))
    throw std::runtime_error(
        "FinePool: out of physical blocks (over-provisioning exhausted)");
  const std::uint32_t blk = *active_block_[chip];
  BlockMeta& m = meta_[block_index(chip, blk)];
  const std::uint32_t page = m.next_page++;

  std::vector<std::uint64_t>& tokens = write_tokens_;
  tokens.assign(geo_.subpages_per_page, 0);
  for (std::size_t i = 0; i < group.size(); ++i) tokens[i] = group[i].token;

  const nand::PageAddr addr{chip, blk, page};
  const auto ack = dev_.program_full(addr, tokens, now);
  ++stats_.flash_prog_full;

  for (std::size_t i = 0; i < group.size(); ++i) {
    const auto slot_idx =
        static_cast<std::size_t>(page) * geo_.subpages_per_page + i;
    m.sector_of_slot[slot_idx] = group[i].sector;
    m.valid[slot_idx] = true;
    ++m.valid_count;
    ++valid_sectors_;
    const std::uint64_t sub_lin = codec_.encode_subpage(
        nand::SubpageAddr{addr, static_cast<std::uint32_t>(i)});
    place_(group[i].sector, sub_lin);
  }
  return ack.done;
}

void FinePool::invalidate(std::uint64_t sub_lin) {
  const nand::SubpageAddr addr = codec_.decode_subpage(sub_lin);
  BlockMeta& m = meta_[block_index(addr.page.chip, addr.page.block)];
  const auto slot_idx =
      static_cast<std::size_t>(addr.page.page) * geo_.subpages_per_page +
      addr.slot;
  if (!m.owned || !m.valid[slot_idx])
    throw std::logic_error("FinePool::invalidate: sector not valid");
  m.valid[slot_idx] = false;
  m.sector_of_slot[slot_idx] = nand::kUnmapped;
  --m.valid_count;
  --valid_sectors_;
  if (!m.active && m.next_page == geo_.pages_per_block)
    push_victim_candidate(
        block_index(addr.page.chip, addr.page.block));
}

void FinePool::push_victim_candidate(std::size_t idx) {
  victim_heap_.emplace(meta_[idx].valid_count, idx);
}

std::optional<std::size_t> FinePool::pop_victim() {
  while (!victim_heap_.empty()) {
    const auto [count, idx] = victim_heap_.top();
    victim_heap_.pop();
    const BlockMeta& m = meta_[idx];
    if (m.owned && !m.active && m.next_page == geo_.pages_per_block &&
        m.valid_count == count)
      return idx;
  }
  return std::nullopt;
}

SimTime FinePool::maybe_gc(SimTime now) {
  while (space_pressure() && blocks_in_use_ > 0) {
    const SimTime after = collect(now);
    if (after == now && space_pressure()) break;
    now = after;
  }
  return now;
}

SimTime FinePool::collect(SimTime now) {
  const auto victim_idx = pop_victim();
  if (!victim_idx) return now;
  if (meta_[*victim_idx].valid_count ==
      static_cast<std::uint32_t>(geo_.pages_per_block) *
          geo_.subpages_per_page) {
    // Nothing reclaimable: decline (see FullPagePool::collect).
    return now;
  }
  ++stats_.gc_invocations;
  return collect_block(*victim_idx, now, /*for_wear_leveling=*/false);
}

SimTime FinePool::collect_block(std::size_t idx, SimTime now,
                                bool for_wear_leveling) {
  const MaintenanceTimer timer(stats_, nullptr, &stats_.maint_gc_ns);
  const auto chip = static_cast<std::uint32_t>(idx / geo_.blocks_per_chip);
  const auto blk = static_cast<std::uint32_t>(idx % geo_.blocks_per_chip);
  BlockMeta& victim = meta_[idx];
  const std::uint32_t subs = geo_.subpages_per_page;
  in_gc_ = true;
  // Repacks (or log-cleaning merges via evict_on_gc_) and the final erase
  // all attribute to this GC/WL episode.
  const telemetry::CauseScope cause(
      sink_,
      for_wear_leveling ? telemetry::Cause::kWearLevel
                        : telemetry::Cause::kGcCopy,
      idx, now);

  // Gather live sectors page by page (one flash read per page that still
  // holds anything live), then repack them densely into full pages.
  std::vector<SectorWrite>& live = gc_live_;
  live.clear();
  live.reserve(victim.valid_count);
  SimTime t = now;
  for (std::uint32_t page = 0; page < geo_.pages_per_block; ++page) {
    bool any = false;
    for (std::uint32_t s = 0; s < subs; ++s)
      any |= victim.valid[static_cast<std::size_t>(page) * subs + s];
    if (!any) continue;
    const auto read = dev_.read_page(nand::PageAddr{chip, blk, page}, now);
    ++stats_.flash_reads;
    t = std::max(t, read.done);
    for (std::uint32_t s = 0; s < subs; ++s) {
      const auto slot_idx = static_cast<std::size_t>(page) * subs + s;
      if (!victim.valid[slot_idx]) continue;
      if (read.status[s] == nand::ReadStatus::kCorrupted ||
          read.status[s] == nand::ReadStatus::kUncorrectable)
        ++stats_.read_failures;
      live.push_back(SectorWrite{victim.sector_of_slot[slot_idx],
                                 read.token[s]});
      victim.valid[slot_idx] = false;
      victim.sector_of_slot[slot_idx] = nand::kUnmapped;
      --victim.valid_count;
      --valid_sectors_;
    }
  }
  std::uint64_t copied = 0;
  std::uint64_t evicted = 0;
  if (evict_on_gc_ && !for_wear_leveling) {
    // Log-region cleaning: merge every live sector out of this pool.
    if (!live.empty()) {
      stats_.cold_evictions += live.size();
      evicted = live.size();
      t = evict_on_gc_(live, t);
    }
  } else {
    for (std::size_t i = 0; i < live.size(); i += subs) {
      const std::size_t n = std::min<std::size_t>(subs, live.size() - i);
      t = write_group(std::span<const SectorWrite>(&live[i], n), t);
      if (for_wear_leveling)
        stats_.wear_level_relocations += n;
      else
        stats_.gc_copy_sectors += n;
      copied += n;
    }
  }
  in_gc_ = false;

  const auto ack = dev_.erase_block(chip, blk, t);
  ++stats_.flash_erases;
  if (sink_) {
    const auto copy_kind = for_wear_leveling ? telemetry::OpKind::kWearLevel
                                             : telemetry::OpKind::kGcCopy;
    if (sink_->wants_op(copy_kind))
      sink_->record_op({copy_kind, now, ack.done, copied, evicted});
    const std::uint32_t pe = dev_.block(chip, blk).pe_cycles();
    sink_->record_block({telemetry::BlockEventKind::kErased, chip, blk,
                         "fine", 0, victim.valid_count, pe, ack.done});
    sink_->record_block({telemetry::BlockEventKind::kRetired, chip, blk,
                         "fine", 0, 0, pe, ack.done});
  }
  victim.owned = false;
  retire_meta_arrays(victim);
  --blocks_in_use_;
  allocator_.release(chip, blk, dev_.block(chip, blk).pe_cycles());
  return ack.done;
}

SimTime FinePool::static_wear_level(SimTime now,
                                    std::uint32_t pe_threshold) {
  const MaintenanceTimer timer(stats_, &stats_.maint_wear_level_calls,
                               &stats_.maint_wear_level_ns);
  std::optional<std::size_t> coldest;
  std::uint32_t coldest_pe = ~0u;
  // Device-wide maximum is tracked monotonically at erase time; the coldest
  // candidate comes from the wear index (or, in reference mode, the
  // original full-device scan kept as the differential baseline).
  const std::uint32_t max_pe = dev_.max_pe_cycles();
  if (config_.reference_scan_maintenance) {
    for (std::uint32_t chip = 0; chip < geo_.total_chips(); ++chip) {
      for (std::uint32_t blk = 0; blk < geo_.blocks_per_chip; ++blk) {
        const std::size_t idx = block_index(chip, blk);
        const BlockMeta& m = meta_[idx];
        if (!m.owned || m.active || m.next_page < geo_.pages_per_block)
          continue;
        const std::uint32_t pe = dev_.block(chip, blk).pe_cycles();
        if (pe < coldest_pe) {
          coldest_pe = pe;
          coldest = idx;
        }
      }
    }
  } else {
    const auto top = wear_index_.peek([&](std::uint32_t pe, std::size_t idx) {
      const BlockMeta& m = meta_[idx];
      if (!m.owned || m.active || m.next_page < geo_.pages_per_block)
        return false;
      const auto chip = static_cast<std::uint32_t>(idx / geo_.blocks_per_chip);
      const auto blk = static_cast<std::uint32_t>(idx % geo_.blocks_per_chip);
      return dev_.block(chip, blk).pe_cycles() == pe;
    });
    if (top) {
      coldest = top->idx;
      coldest_pe = top->pe;
    }
  }
  if (!coldest || max_pe - coldest_pe <= pe_threshold) return now;
  if (allocator_.total_free() == 0) return now;
  return collect_block(*coldest, now, /*for_wear_leveling=*/true);
}

void FinePool::fill_health(std::span<telemetry::BlockHealth> out) const {
  const std::size_t n = std::min(out.size(), meta_.size());
  for (std::size_t idx = 0; idx < n; ++idx) {
    if (!meta_[idx].owned) continue;
    out[idx].pool = static_cast<std::uint8_t>(telemetry::HealthPool::kFine);
    out[idx].valid = meta_[idx].valid_count;
    out[idx].valid_cap = geo_.pages_per_block * geo_.subpages_per_page;
  }
}

void FinePool::save_state(util::StateWriter& w) const {
  w.tag("FPOL");
  w.u64(meta_.size());
  for (const BlockMeta& m : meta_) {
    w.b(m.owned);
    w.b(m.active);
    w.u32(m.next_page);
    w.u32(m.valid_count);
    w.pod_vec(m.sector_of_slot);
    w.bool_vec(m.valid);
  }
  w.u64(active_block_.size());
  for (const auto& ab : active_block_) {
    w.b(ab.has_value());
    w.u32(ab.value_or(0));
  }
  w.pair_vec(util::heap_container(victim_heap_));
  wear_index_.save_state(w);
  w.u32(rr_chip_);
  w.u64(blocks_in_use_);
  w.u64(valid_sectors_);
}

void FinePool::load_state(util::StateReader& r) {
  r.tag("FPOL");
  if (r.u64() != meta_.size())
    throw std::runtime_error("FinePool::load_state: block count mismatch");
  for (BlockMeta& m : meta_) {
    m.owned = r.b();
    m.active = r.b();
    m.next_page = r.u32();
    m.valid_count = r.u32();
    r.pod_vec(m.sector_of_slot);
    r.bool_vec(m.valid);
  }
  if (r.u64() != active_block_.size())
    throw std::runtime_error("FinePool::load_state: chip count mismatch");
  for (auto& ab : active_block_) {
    const bool has = r.b();
    const std::uint32_t blk = r.u32();
    ab = has ? std::optional<std::uint32_t>(blk) : std::nullopt;
  }
  r.pair_vec(util::heap_container(victim_heap_));
  wear_index_.load_state(r);
  rr_chip_ = r.u32();
  blocks_in_use_ = r.u64();
  valid_sectors_ = r.u64();
  spare_meta_.clear();
  in_gc_ = false;
}

}  // namespace esp::ftl
