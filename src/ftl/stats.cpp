#include "ftl/types.h"

namespace esp::ftl {

FtlStats stats_delta(const FtlStats& after, const FtlStats& before) {
  FtlStats d;
  d.host_write_requests = after.host_write_requests - before.host_write_requests;
  d.host_read_requests = after.host_read_requests - before.host_read_requests;
  d.host_write_sectors = after.host_write_sectors - before.host_write_sectors;
  d.host_read_sectors = after.host_read_sectors - before.host_read_sectors;
  d.flash_prog_full = after.flash_prog_full - before.flash_prog_full;
  d.flash_prog_sub = after.flash_prog_sub - before.flash_prog_sub;
  d.flash_reads = after.flash_reads - before.flash_reads;
  d.flash_erases = after.flash_erases - before.flash_erases;
  d.rmw_ops = after.rmw_ops - before.rmw_ops;
  d.gc_invocations = after.gc_invocations - before.gc_invocations;
  d.gc_copy_sectors = after.gc_copy_sectors - before.gc_copy_sectors;
  d.forward_migrations = after.forward_migrations - before.forward_migrations;
  d.cold_evictions = after.cold_evictions - before.cold_evictions;
  d.retention_evictions =
      after.retention_evictions - before.retention_evictions;
  d.wear_level_relocations =
      after.wear_level_relocations - before.wear_level_relocations;
  d.buffer_hits = after.buffer_hits - before.buffer_hits;
  d.read_failures = after.read_failures - before.read_failures;
  d.small_write_requests =
      after.small_write_requests - before.small_write_requests;
  d.small_write_bytes = after.small_write_bytes - before.small_write_bytes;
  d.small_service_flash_bytes =
      after.small_service_flash_bytes - before.small_service_flash_bytes;
  d.small_extra_flash_bytes =
      after.small_extra_flash_bytes - before.small_extra_flash_bytes;
  return d;
}

}  // namespace esp::ftl
