#include "ftl/types.h"

#include "telemetry/metrics.h"

namespace esp::ftl {

FtlStats stats_delta(const FtlStats& after, const FtlStats& before) {
  FtlStats d;
  d.host_write_requests = after.host_write_requests - before.host_write_requests;
  d.host_read_requests = after.host_read_requests - before.host_read_requests;
  d.host_write_sectors = after.host_write_sectors - before.host_write_sectors;
  d.host_read_sectors = after.host_read_sectors - before.host_read_sectors;
  d.flash_prog_full = after.flash_prog_full - before.flash_prog_full;
  d.flash_prog_sub = after.flash_prog_sub - before.flash_prog_sub;
  d.flash_reads = after.flash_reads - before.flash_reads;
  d.flash_erases = after.flash_erases - before.flash_erases;
  d.rmw_ops = after.rmw_ops - before.rmw_ops;
  d.gc_invocations = after.gc_invocations - before.gc_invocations;
  d.gc_copy_sectors = after.gc_copy_sectors - before.gc_copy_sectors;
  d.forward_migrations = after.forward_migrations - before.forward_migrations;
  d.cold_evictions = after.cold_evictions - before.cold_evictions;
  d.retention_evictions =
      after.retention_evictions - before.retention_evictions;
  d.wear_level_relocations =
      after.wear_level_relocations - before.wear_level_relocations;
  d.buffer_hits = after.buffer_hits - before.buffer_hits;
  d.read_failures = after.read_failures - before.read_failures;
  d.small_write_requests =
      after.small_write_requests - before.small_write_requests;
  d.small_write_bytes = after.small_write_bytes - before.small_write_bytes;
  d.small_service_flash_bytes =
      after.small_service_flash_bytes - before.small_service_flash_bytes;
  d.small_extra_flash_bytes =
      after.small_extra_flash_bytes - before.small_extra_flash_bytes;
  d.maint_retention_calls =
      after.maint_retention_calls - before.maint_retention_calls;
  d.maint_retention_ns = after.maint_retention_ns - before.maint_retention_ns;
  d.maint_wear_level_calls =
      after.maint_wear_level_calls - before.maint_wear_level_calls;
  d.maint_wear_level_ns =
      after.maint_wear_level_ns - before.maint_wear_level_ns;
  d.maint_release_idle_calls =
      after.maint_release_idle_calls - before.maint_release_idle_calls;
  d.maint_release_idle_ns =
      after.maint_release_idle_ns - before.maint_release_idle_ns;
  d.maint_gc_ns = after.maint_gc_ns - before.maint_gc_ns;
  return d;
}

FtlStats stats_sum(const FtlStats& a, const FtlStats& b) {
  FtlStats s;
  s.host_write_requests = a.host_write_requests + b.host_write_requests;
  s.host_read_requests = a.host_read_requests + b.host_read_requests;
  s.host_write_sectors = a.host_write_sectors + b.host_write_sectors;
  s.host_read_sectors = a.host_read_sectors + b.host_read_sectors;
  s.flash_prog_full = a.flash_prog_full + b.flash_prog_full;
  s.flash_prog_sub = a.flash_prog_sub + b.flash_prog_sub;
  s.flash_reads = a.flash_reads + b.flash_reads;
  s.flash_erases = a.flash_erases + b.flash_erases;
  s.rmw_ops = a.rmw_ops + b.rmw_ops;
  s.gc_invocations = a.gc_invocations + b.gc_invocations;
  s.gc_copy_sectors = a.gc_copy_sectors + b.gc_copy_sectors;
  s.forward_migrations = a.forward_migrations + b.forward_migrations;
  s.cold_evictions = a.cold_evictions + b.cold_evictions;
  s.retention_evictions = a.retention_evictions + b.retention_evictions;
  s.wear_level_relocations =
      a.wear_level_relocations + b.wear_level_relocations;
  s.buffer_hits = a.buffer_hits + b.buffer_hits;
  s.read_failures = a.read_failures + b.read_failures;
  s.small_write_requests = a.small_write_requests + b.small_write_requests;
  s.small_write_bytes = a.small_write_bytes + b.small_write_bytes;
  s.small_service_flash_bytes =
      a.small_service_flash_bytes + b.small_service_flash_bytes;
  s.small_extra_flash_bytes =
      a.small_extra_flash_bytes + b.small_extra_flash_bytes;
  s.maint_retention_calls = a.maint_retention_calls + b.maint_retention_calls;
  s.maint_retention_ns = a.maint_retention_ns + b.maint_retention_ns;
  s.maint_wear_level_calls =
      a.maint_wear_level_calls + b.maint_wear_level_calls;
  s.maint_wear_level_ns = a.maint_wear_level_ns + b.maint_wear_level_ns;
  s.maint_release_idle_calls =
      a.maint_release_idle_calls + b.maint_release_idle_calls;
  s.maint_release_idle_ns = a.maint_release_idle_ns + b.maint_release_idle_ns;
  s.maint_gc_ns = a.maint_gc_ns + b.maint_gc_ns;
  return s;
}

MaintenanceTimer::MaintenanceTimer(FtlStats& stats, std::uint64_t* calls,
                                   std::uint64_t* ns)
    : stats_(stats), ns_(ns), outer_(stats.maint_timer_depth == 0) {
  ++stats_.maint_timer_depth;
  if (!outer_) return;
  if (calls) ++*calls;
  start_ = std::chrono::steady_clock::now();
}

MaintenanceTimer::~MaintenanceTimer() {
  --stats_.maint_timer_depth;
  if (!outer_ || !ns_) return;
  *ns_ += static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
}

namespace {

/// Applies fn(field) to every FtlStats counter in declaration order, so the
/// save and load sides cannot drift apart.
template <typename Stats, typename Fn>
void for_each_stat(Stats& s, Fn&& fn) {
  fn(s.host_write_requests);
  fn(s.host_read_requests);
  fn(s.host_write_sectors);
  fn(s.host_read_sectors);
  fn(s.flash_prog_full);
  fn(s.flash_prog_sub);
  fn(s.flash_reads);
  fn(s.flash_erases);
  fn(s.rmw_ops);
  fn(s.gc_invocations);
  fn(s.gc_copy_sectors);
  fn(s.forward_migrations);
  fn(s.cold_evictions);
  fn(s.retention_evictions);
  fn(s.wear_level_relocations);
  fn(s.buffer_hits);
  fn(s.read_failures);
  fn(s.small_write_requests);
  fn(s.small_write_bytes);
  fn(s.small_service_flash_bytes);
  fn(s.small_extra_flash_bytes);
  fn(s.maint_retention_calls);
  fn(s.maint_retention_ns);
  fn(s.maint_wear_level_calls);
  fn(s.maint_wear_level_ns);
  fn(s.maint_release_idle_calls);
  fn(s.maint_release_idle_ns);
  fn(s.maint_gc_ns);
}

}  // namespace

void save_stats(util::StateWriter& w, const FtlStats& s) {
  w.tag("STAT");
  for_each_stat(s, [&](const std::uint64_t& f) { w.u64(f); });
}

void load_stats(util::StateReader& r, FtlStats& s) {
  r.tag("STAT");
  for_each_stat(s, [&](std::uint64_t& f) { f = r.u64(); });
  s.maint_timer_depth = 0;
}

void bind_stats(telemetry::MetricsRegistry& registry, const std::string& scope,
                const FtlStats& stats) {
  const auto bind = [&](const char* field, const std::uint64_t& src) {
    registry.bind_counter(scope + "/" + field, &src);
  };
  bind("host_write_requests", stats.host_write_requests);
  bind("host_read_requests", stats.host_read_requests);
  bind("host_write_sectors", stats.host_write_sectors);
  bind("host_read_sectors", stats.host_read_sectors);
  bind("flash_prog_full", stats.flash_prog_full);
  bind("flash_prog_sub", stats.flash_prog_sub);
  bind("flash_reads", stats.flash_reads);
  bind("flash_erases", stats.flash_erases);
  bind("rmw_ops", stats.rmw_ops);
  bind("gc_invocations", stats.gc_invocations);
  bind("gc_copy_sectors", stats.gc_copy_sectors);
  bind("forward_migrations", stats.forward_migrations);
  bind("cold_evictions", stats.cold_evictions);
  bind("retention_evictions", stats.retention_evictions);
  bind("wear_level_relocations", stats.wear_level_relocations);
  bind("buffer_hits", stats.buffer_hits);
  bind("read_failures", stats.read_failures);
  bind("small_write_requests", stats.small_write_requests);
  bind("small_write_bytes", stats.small_write_bytes);
  bind("small_service_flash_bytes", stats.small_service_flash_bytes);
  bind("small_extra_flash_bytes", stats.small_extra_flash_bytes);
}

}  // namespace esp::ftl
