// DFTL-style mapping cache model.
//
// The paper's case for hybrid mapping is DRAM cost: a fine-grained (4-KB)
// L2P table is Nsub times the coarse one (Sec. 1/4). Real controllers with
// insufficient DRAM keep the table on flash and cache translation pages on
// demand (DFTL, Gupta et al., ASPLOS'09); then the cost shows up as TIME --
// every cache miss is a flash read, every dirty eviction a flash program.
//
// This model is deliberately standalone (it does not hook into the FTL
// hot paths): benches replay a workload's translation-entry access stream
// through it and convert miss/writeback counts into per-request overhead,
// which is how the mapping-memory ablation turns bytes into microseconds.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

namespace esp::ftl {

class MappingCache {
 public:
  /// @param capacity_pages     translation pages that fit in DRAM
  /// @param entries_per_page   L2P entries per translation page
  ///                           (16-KB page / 4-B entry = 4096)
  MappingCache(std::size_t capacity_pages, std::uint32_t entries_per_page);

  struct Access {
    bool hit = false;        ///< translation page was cached
    bool writeback = false;  ///< a dirty page was evicted to make room
  };

  /// Touches the translation entry; `dirty` marks the mapping page
  /// modified (a write updating the L2P entry).
  Access access(std::uint64_t entry_index, bool dirty);

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t writebacks() const { return writebacks_; }
  std::size_t resident_pages() const { return lru_.size(); }
  std::size_t capacity_pages() const { return capacity_; }

  double hit_rate() const {
    const auto total = hits_ + misses_;
    return total ? static_cast<double>(hits_) / total : 1.0;
  }

  void reset_counters();

 private:
  struct Line {
    std::uint64_t page;
    bool dirty;
  };

  std::size_t capacity_;
  std::uint32_t entries_per_page_;
  std::list<Line> lru_;  ///< front = most recent
  std::unordered_map<std::uint64_t, std::list<Line>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t writebacks_ = 0;
};

}  // namespace esp::ftl
