#include "ftl/write_buffer.h"

#include <algorithm>

namespace esp::ftl {

WriteBuffer::WriteBuffer(std::size_t capacity_sectors)
    : capacity_(capacity_sectors) {}

bool WriteBuffer::insert(std::uint64_t sector, std::uint64_t token,
                         bool small) {
  const std::uint64_t seq = next_seq_++;
  auto [it, fresh] = entries_.try_emplace(sector, Entry{token, seq, small});
  if (!fresh) {
    it->second.token = token;
    it->second.seq = seq;
    it->second.small = small;
  }
  age_log_.emplace_back(seq, sector);
  // Overwrite-heavy workloads (one hot sector rewritten forever) append a
  // log entry per insert but never extract, so lazy pruning alone lets the
  // deque grow without bound. Compact once stale entries outnumber live
  // ones 2:1; amortized O(1) per insert.
  if (age_log_.size() > 2 * entries_.size() + 16) compact_age_log();
  return !fresh;
}

void WriteBuffer::compact_age_log() {
  std::deque<std::pair<std::uint64_t, std::uint64_t>> live;
  for (const auto& [seq, sector] : age_log_) {
    const auto it = entries_.find(sector);
    if (it != entries_.end() && it->second.seq == seq)
      live.emplace_back(seq, sector);
  }
  age_log_.swap(live);
}

bool WriteBuffer::lookup(std::uint64_t sector, std::uint64_t* token) const {
  const auto it = entries_.find(sector);
  if (it == entries_.end()) return false;
  if (token) *token = it->second.token;
  return true;
}

bool WriteBuffer::erase(std::uint64_t sector) {
  return entries_.erase(sector) > 0;
}

std::vector<BufferedSector> WriteBuffer::extract_run(std::uint64_t sector) {
  std::vector<BufferedSector> run;
  if (!entries_.contains(sector)) return run;
  // Walk down to the start of the contiguous run, then sweep upward.
  std::uint64_t lo = sector;
  while (lo > 0 && entries_.contains(lo - 1)) --lo;
  for (std::uint64_t s = lo; ; ++s) {
    const auto it = entries_.find(s);
    if (it == entries_.end()) break;
    run.push_back(BufferedSector{s, it->second.token, it->second.small});
    entries_.erase(it);
  }
  return run;
}

std::vector<BufferedSector> WriteBuffer::extract_oldest_run() {
  while (!age_log_.empty()) {
    const auto [seq, sector] = age_log_.front();
    const auto it = entries_.find(sector);
    if (it == entries_.end() || it->second.seq != seq) {
      age_log_.pop_front();  // stale: overwritten or already extracted
      continue;
    }
    return extract_run(sector);
  }
  return {};
}

std::vector<BufferedSector> WriteBuffer::extract_page_group(
    std::uint64_t sector, std::uint32_t sectors_per_page) {
  std::vector<BufferedSector> group;
  if (!entries_.contains(sector)) return group;
  const auto page_has = [this, sectors_per_page](std::uint64_t lpn) {
    for (std::uint32_t s = 0; s < sectors_per_page; ++s)
      if (entries_.contains(lpn * sectors_per_page + s)) return true;
    return false;
  };
  std::uint64_t lo = sector / sectors_per_page;
  while (lo > 0 && page_has(lo - 1)) --lo;
  std::uint64_t hi = sector / sectors_per_page;
  while (page_has(hi + 1)) ++hi;
  for (std::uint64_t lpn = lo; lpn <= hi; ++lpn) {
    for (std::uint32_t s = 0; s < sectors_per_page; ++s) {
      const std::uint64_t cur = lpn * sectors_per_page + s;
      const auto it = entries_.find(cur);
      if (it == entries_.end()) continue;
      group.push_back(BufferedSector{cur, it->second.token, it->second.small});
      entries_.erase(it);
    }
  }
  return group;
}

std::vector<BufferedSector> WriteBuffer::extract_oldest_page_group(
    std::uint32_t sectors_per_page) {
  while (!age_log_.empty()) {
    const auto [seq, sector] = age_log_.front();
    const auto it = entries_.find(sector);
    if (it == entries_.end() || it->second.seq != seq) {
      age_log_.pop_front();
      continue;
    }
    return extract_page_group(sector, sectors_per_page);
  }
  return {};
}

std::vector<BufferedSector> WriteBuffer::drain() {
  std::vector<BufferedSector> all;
  while (!entries_.empty()) {
    auto run = extract_oldest_run();
    all.insert(all.end(), run.begin(), run.end());
  }
  age_log_.clear();
  return all;
}

namespace {
struct ArchivedEntry {
  std::uint64_t sector;
  std::uint64_t token;
  std::uint64_t seq;
  std::uint8_t small;
};
}  // namespace

void WriteBuffer::save_state(util::StateWriter& w) const {
  w.tag("WBUF");
  w.u64(capacity_);
  w.u64(next_seq_);
  std::vector<ArchivedEntry> sorted;
  sorted.reserve(entries_.size());
  for (const auto& [sector, e] : entries_)
    sorted.push_back({sector, e.token, e.seq, e.small ? std::uint8_t{1}
                                                      : std::uint8_t{0}});
  std::sort(sorted.begin(), sorted.end(),
            [](const ArchivedEntry& a, const ArchivedEntry& b) {
              return a.sector < b.sector;
            });
  w.pod_vec(sorted);
  w.pair_deque(age_log_);
}

void WriteBuffer::load_state(util::StateReader& r) {
  r.tag("WBUF");
  if (r.u64() != capacity_)
    throw std::runtime_error("WriteBuffer::load_state: capacity mismatch");
  next_seq_ = r.u64();
  std::vector<ArchivedEntry> sorted;
  r.pod_vec(sorted);
  entries_.clear();
  entries_.reserve(sorted.size());
  for (const ArchivedEntry& e : sorted)
    entries_.emplace(e.sector, Entry{e.token, e.seq, e.small != 0});
  r.pair_deque(age_log_);
}

}  // namespace esp::ftl
