#include "ftl/cgm_ftl.h"

#include <algorithm>
#include <optional>
#include <stdexcept>

#include "telemetry/metrics.h"

namespace esp::ftl {

CgmFtl::CgmFtl(nand::NandDevice& dev, const Config& config)
    : dev_(dev),
      config_(config),
      geo_(dev.geometry()),
      codec_(geo_),
      allocator_(geo_),
      pool_(dev, allocator_,
            FullPagePool::Config{/*quota_blocks=*/~0ull,
                                 config.gc_reserve_blocks,
                                 config.use_copyback,
                                 config.reference_scan_maintenance},
            stats_,
            [this](std::uint64_t lpn, std::uint64_t new_lin) {
              l2p_[lpn] = new_lin;
            }) {
  if (config_.logical_sectors == 0)
    throw std::invalid_argument("CgmFtl: logical_sectors must be > 0");
  const std::uint64_t sectors_per_page = geo_.subpages_per_page;
  const std::uint64_t lpns =
      (config_.logical_sectors + sectors_per_page - 1) / sectors_per_page;
  const std::uint64_t physical_sectors = geo_.total_subpages();
  if (config_.logical_sectors > physical_sectors)
    throw std::invalid_argument("CgmFtl: logical space exceeds physical");
  l2p_.assign(lpns, nand::kUnmapped);
  version_.assign(config_.logical_sectors, 0);
}

void CgmFtl::check_range(std::uint64_t sector, std::uint32_t count) const {
  if (count == 0 || sector + count > config_.logical_sectors)
    throw std::out_of_range("CgmFtl: sector range outside logical space");
}

SimTime CgmFtl::write_lpn(std::uint64_t lpn, std::uint32_t first_slot,
                          std::uint32_t slot_count, bool small_request,
                          SimTime now) {
  const std::uint32_t subs = geo_.subpages_per_page;
  std::vector<std::uint64_t> tokens(subs, 0);
  SimTime t = now;

  const bool partial = slot_count < subs;
  const std::uint64_t old_lin = l2p_[lpn];
  const bool is_rmw = partial && old_lin != nand::kUnmapped;
  // The whole read + merge + program services a small write via RMW; any
  // GC the program triggers nests under this scope (chain host>rmw>gc).
  std::optional<telemetry::CauseScope> rmw_cause;
  if (is_rmw && sink_)
    rmw_cause.emplace(sink_, telemetry::Cause::kRmw, lpn, now);
  if (is_rmw) {
    // Read-modify-write: fetch the old page to preserve untouched sectors.
    const auto read = dev_.read_page(codec_.decode_page(old_lin), t);
    ++stats_.flash_reads;
    ++stats_.rmw_ops;
    for (std::uint32_t s = 0; s < subs; ++s) {
      tokens[s] = read.token[s];
      if (read.status[s] == nand::ReadStatus::kCorrupted ||
          read.status[s] == nand::ReadStatus::kUncorrectable)
        ++stats_.read_failures;
    }
    t = read.done;
  }

  for (std::uint32_t i = 0; i < slot_count; ++i) {
    const std::uint32_t slot = first_slot + i;
    const std::uint64_t sector =
        lpn * subs + slot;
    tokens[slot] = make_token(sector, ++version_[sector]);
  }

  // Invalidate the stale copy before programming: GC may run inside
  // write_page, and a still-valid old page would be pointlessly copied
  // (or relocated, leaving old_lin dangling).
  if (old_lin != nand::kUnmapped) {
    pool_.invalidate(old_lin);
    l2p_[lpn] = nand::kUnmapped;
  }
  const auto [new_lin, done] = pool_.write_page(lpn, tokens, t);
  l2p_[lpn] = new_lin;
  if (small_request)
    stats_.small_service_flash_bytes += geo_.page_bytes;
  if (sink_ && is_rmw && sink_->wants_op(telemetry::OpKind::kRmw))
    sink_->record_op({telemetry::OpKind::kRmw, now, done, slot_count});
  return done;
}

IoResult CgmFtl::write(std::uint64_t sector, std::uint32_t count, bool /*sync*/,
                       SimTime now) {
  check_range(sector, count);
  if (config_.wl_check_interval > 0 &&
      ++writes_since_wl_ >= config_.wl_check_interval) {
    writes_since_wl_ = 0;
    now = pool_.static_wear_level(now, config_.wl_pe_threshold);
  }
  ++stats_.host_write_requests;
  stats_.host_write_sectors += count;
  const std::uint32_t subs = geo_.subpages_per_page;
  const bool small = count < subs;
  if (small) {
    ++stats_.small_write_requests;
    stats_.small_write_bytes +=
        static_cast<std::uint64_t>(count) * geo_.subpage_bytes();
  }

  SimTime done = now;
  std::uint64_t s = sector;
  std::uint32_t remaining = count;
  while (remaining > 0) {
    const std::uint64_t lpn = s / subs;
    const auto slot = static_cast<std::uint32_t>(s % subs);
    const std::uint32_t in_page = std::min(remaining, subs - slot);
    done = std::max(done, write_lpn(lpn, slot, in_page, small, now));
    s += in_page;
    remaining -= in_page;
  }
  return IoResult{done, true};
}

IoResult CgmFtl::read(std::uint64_t sector, std::uint32_t count, SimTime now,
                      std::vector<std::uint64_t>* tokens) {
  check_range(sector, count);
  ++stats_.host_read_requests;
  stats_.host_read_sectors += count;
  if (tokens) tokens->assign(count, 0);

  const std::uint32_t subs = geo_.subpages_per_page;
  SimTime done = now;
  bool ok = true;
  std::uint64_t s = sector;
  std::uint32_t remaining = count;
  std::uint32_t out = 0;
  while (remaining > 0) {
    const std::uint64_t lpn = s / subs;
    const auto slot = static_cast<std::uint32_t>(s % subs);
    const std::uint32_t in_page = std::min(remaining, subs - slot);
    const std::uint64_t lin = l2p_[lpn];
    if (lin != nand::kUnmapped) {
      const auto read = dev_.read_page(codec_.decode_page(lin), now);
      ++stats_.flash_reads;
      for (std::uint32_t i = 0; i < in_page; ++i) {
        const auto st = read.status[slot + i];
        if (st == nand::ReadStatus::kCorrupted ||
            st == nand::ReadStatus::kUncorrectable) {
          ok = false;
          ++stats_.read_failures;
        }
        if (tokens) (*tokens)[out + i] = read.token[slot + i];
      }
      done = std::max(done, read.done);
    }
    s += in_page;
    remaining -= in_page;
    out += in_page;
  }
  return IoResult{done, ok};
}

IoResult CgmFtl::flush(SimTime now) { return IoResult{now, true}; }

void CgmFtl::trim(std::uint64_t sector, std::uint32_t count) {
  check_range(sector, count);
  const std::uint32_t subs = geo_.subpages_per_page;
  // Only whole logical pages can be dropped under coarse mapping; partial
  // trims at the edges are ignored (the device keeps the stale sectors).
  std::uint64_t first_lpn = (sector + subs - 1) / subs;
  std::uint64_t end_lpn = (sector + count) / subs;
  for (std::uint64_t lpn = first_lpn; lpn < end_lpn; ++lpn) {
    if (l2p_[lpn] == nand::kUnmapped) continue;
    pool_.invalidate(l2p_[lpn]);
    l2p_[lpn] = nand::kUnmapped;
  }
}

std::uint64_t CgmFtl::mapping_memory_bytes() const {
  // One 32-bit PPA per logical page.
  return l2p_.size() * sizeof(std::uint32_t);
}

void CgmFtl::set_telemetry(telemetry::Sink* sink) {
  sink_ = sink;
  pool_.set_telemetry(sink);
  if (!sink) return;
  telemetry::MetricsRegistry& reg = sink->registry();
  bind_stats(reg, name(), stats_);
  reg.gauge(name() + "/fullpage_blocks").set_provider([this] {
    return static_cast<double>(pool_.blocks_in_use());
  });
  reg.gauge(name() + "/mapping_memory_bytes").set_provider([this] {
    return static_cast<double>(mapping_memory_bytes());
  });
}

void CgmFtl::save_state(util::StateWriter& w) const {
  w.tag("CGMF");
  save_stats(w, stats_);
  allocator_.save_state(w);
  pool_.save_state(w);
  w.pod_vec(l2p_);
  w.pod_vec(version_);
  w.u32(writes_since_wl_);
}

void CgmFtl::load_state(util::StateReader& r) {
  r.tag("CGMF");
  load_stats(r, stats_);
  allocator_.load_state(r);
  pool_.load_state(r);
  r.pod_vec(l2p_);
  r.pod_vec(version_);
  writes_since_wl_ = r.u32();
}

}  // namespace esp::ftl
