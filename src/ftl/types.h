// Common FTL-level types: sector tokens, I/O results, statistics.
//
// The host address space is a flat array of 4-KB *sectors* (the subpage
// unit Ssub). A *logical page* (lpn) groups Geometry::subpages_per_page
// consecutive sectors and matches the 16-KB physical page Sfull.
//
// Every sector stored on flash carries a 64-bit token encoding
// (sector, version). The simulation driver keeps a shadow copy of the
// expected version per sector, so any FTL mapping bug, illegal ESP program
// or retention violation is caught as a token mismatch on read -- the
// simulator's equivalent of end-to-end data-path CRC.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "util/serialize.h"
#include "util/sim_time.h"

namespace esp::telemetry {
class MetricsRegistry;
}

namespace esp::ftl {

/// Sector payload token. Token 0 is reserved for "no data" (padding slots).
constexpr std::uint64_t make_token(std::uint64_t sector,
                                   std::uint64_t version) {
  return ((version & 0xFFFFFF) << 40) | (sector + 1);
}
constexpr bool token_empty(std::uint64_t token) { return token == 0; }
constexpr std::uint64_t token_sector(std::uint64_t token) {
  return (token & ((1ull << 40) - 1)) - 1;
}
constexpr std::uint64_t token_version(std::uint64_t token) {
  return token >> 40;
}

/// One live sector to be placed on flash (used by pools and batch APIs).
struct SectorWrite {
  std::uint64_t sector = 0;
  std::uint64_t token = 0;
};

/// Completion of one host request.
struct IoResult {
  SimTime done = 0.0;  ///< simulated completion time
  bool ok = true;      ///< false on read of corrupted/expired data
};

/// Monotonic per-FTL counters. All byte quantities are raw flash bytes.
struct FtlStats {
  // Host-visible traffic.
  std::uint64_t host_write_requests = 0;
  std::uint64_t host_read_requests = 0;
  std::uint64_t host_write_sectors = 0;
  std::uint64_t host_read_sectors = 0;

  // Flash operations issued (programs also tracked by the device; kept
  // here per-FTL so multiple FTL instances can share comparisons).
  std::uint64_t flash_prog_full = 0;
  std::uint64_t flash_prog_sub = 0;
  std::uint64_t flash_reads = 0;
  std::uint64_t flash_erases = 0;

  // Mechanism counters.
  std::uint64_t rmw_ops = 0;             ///< read-modify-write services
  std::uint64_t gc_invocations = 0;
  std::uint64_t gc_copy_sectors = 0;     ///< sectors relocated by GC
  std::uint64_t forward_migrations = 0;  ///< ESP in-page valid forwarding
  std::uint64_t cold_evictions = 0;      ///< subpage -> full-page (GC)
  std::uint64_t retention_evictions = 0; ///< subpage -> full-page (age)
  std::uint64_t wear_level_relocations = 0;  ///< sectors moved by static WL
  std::uint64_t buffer_hits = 0;         ///< reads served from write buffer
  std::uint64_t read_failures = 0;       ///< uncorrectable/corrupt reads

  // Small-write accounting for the paper's request-WAF metric (Table 1).
  // "Small" = host write request shorter than one full page.
  std::uint64_t small_write_requests = 0;
  std::uint64_t small_write_bytes = 0;          ///< host bytes of small reqs
  std::uint64_t small_service_flash_bytes = 0;  ///< flash bytes to service them
  std::uint64_t small_extra_flash_bytes = 0;    ///< migrations + evictions

  // Maintenance-path profiling: host wall-clock nanoseconds spent inside
  // the periodic maintenance entry points (retention scan, static wear
  // leveling, idle-block release, GC). MEASURED time, not simulated time:
  // it varies run to run and across hosts, so these fields are
  // deliberately NOT bound by bind_stats() -- exported metric sets must
  // stay bit-deterministic. They feed macro_replay's maintenance-share
  // report and the micro_ftl_ops asymptotic-regression benchmarks.
  // Maintenance work nested inside another maintenance pass (e.g. a GC
  // triggered by a retention eviction) attributes to the OUTER pass only
  // (see MaintenanceTimer).
  std::uint64_t maint_retention_calls = 0;
  std::uint64_t maint_retention_ns = 0;
  std::uint64_t maint_wear_level_calls = 0;
  std::uint64_t maint_wear_level_ns = 0;
  std::uint64_t maint_release_idle_calls = 0;
  std::uint64_t maint_release_idle_ns = 0;
  std::uint64_t maint_gc_ns = 0;  ///< calls tracked by gc_invocations
  /// Live nesting depth of maintenance timers; bookkeeping, not a metric.
  std::uint32_t maint_timer_depth = 0;

  /// Average request WAF of small writes (paper Table 1): flash bytes
  /// consumed on behalf of small writes / host bytes of small writes.
  double avg_small_request_waf() const {
    if (small_write_bytes == 0) return 1.0;
    return static_cast<double>(small_service_flash_bytes +
                               small_extra_flash_bytes) /
           static_cast<double>(small_write_bytes);
  }

  /// Overall write amplification given flash program byte counts.
  double overall_waf(std::uint64_t page_bytes,
                     std::uint64_t subpage_bytes) const {
    const std::uint64_t host = host_write_sectors * subpage_bytes;
    if (host == 0) return 1.0;
    return static_cast<double>(flash_prog_full * page_bytes +
                               flash_prog_sub * subpage_bytes) /
           static_cast<double>(host);
  }
};

/// Counter-wise difference (after - before): stats for a measured window
/// of a longer run. Requires `after` to be a later snapshot of the same
/// FTL than `before`.
FtlStats stats_delta(const FtlStats& after, const FtlStats& before);

/// Snapshot archive of every FtlStats field, the measured maint_* wall
/// clocks included (they resume accumulating; exports never bind them, so
/// restore-equivalence of exported metric sets is unaffected).
void save_stats(util::StateWriter& w, const FtlStats& s);
void load_stats(util::StateReader& r, FtlStats& s);

/// Counter-wise sum: aggregate stats of independent FTL instances (the
/// shard-merge reconciliation -- merged counters are BY CONSTRUCTION the
/// sum of the shards). Field-for-field dual of stats_delta.
FtlStats stats_sum(const FtlStats& a, const FtlStats& b);

/// RAII wall-clock timer for a maintenance entry point. The outermost
/// timer on a stats struct accumulates elapsed steady-clock nanoseconds
/// into *ns and bumps *calls (either may be nullptr); nested timers are
/// no-ops so work triggered from inside a maintenance pass is attributed
/// once, to the pass that caused it.
class MaintenanceTimer {
 public:
  MaintenanceTimer(FtlStats& stats, std::uint64_t* calls, std::uint64_t* ns);
  ~MaintenanceTimer();
  MaintenanceTimer(const MaintenanceTimer&) = delete;
  MaintenanceTimer& operator=(const MaintenanceTimer&) = delete;

 private:
  FtlStats& stats_;
  std::uint64_t* ns_;
  std::chrono::steady_clock::time_point start_;
  bool outer_;
};

/// Binds every FtlStats field into `registry` as "<scope>/<field>" live
/// counters (read at export; the hot path keeps incrementing the struct).
void bind_stats(telemetry::MetricsRegistry& registry, const std::string& scope,
                const FtlStats& stats);

}  // namespace esp::ftl
