// Host write buffer (fgmFTL and subFTL front end).
//
// Buffers dirty 4-KB sectors so that small *asynchronous* writes can be
// merged into full-page programs before reaching flash. Synchronous writes
// pass through: the FTL extracts them (plus any contiguous buffered
// neighbors -- a free merge) immediately, which is exactly why sync-heavy
// workloads defeat the FGM scheme (paper Sec. 2).
//
// The buffer only stores tokens; flush policy lives in the owning FTL.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "util/serialize.h"

namespace esp::ftl {

struct BufferedSector {
  std::uint64_t sector = 0;
  std::uint64_t token = 0;
  bool small = false;  ///< originated from a small host request
};

class WriteBuffer {
 public:
  explicit WriteBuffer(std::size_t capacity_sectors);

  /// Inserts or overwrites a dirty sector. Returns true when the sector was
  /// already buffered (write hit).
  bool insert(std::uint64_t sector, std::uint64_t token, bool small);

  /// Read hit: fills `token` and returns true when the sector is buffered.
  bool lookup(std::uint64_t sector, std::uint64_t* token) const;

  /// Drops a sector (TRIM). Returns true when it was present.
  bool erase(std::uint64_t sector);

  /// Removes and returns the maximal run of buffered sectors contiguous
  /// with (and including) `sector`, sorted ascending. Empty when `sector`
  /// is not buffered.
  std::vector<BufferedSector> extract_run(std::uint64_t sector);

  /// Removes and returns the least-recently-written sector's contiguous
  /// run (capacity eviction). Empty when the buffer is empty.
  std::vector<BufferedSector> extract_oldest_run();

  /// Page-granular merge unit: removes and returns every buffered sector
  /// belonging to the maximal chain of consecutive logical pages (of
  /// `sectors_per_page` sectors) that each hold at least one buffered
  /// sector, containing `sector`'s page. Sorted ascending. This is the
  /// "merge small writes with consecutive logical block addresses" unit of
  /// the paper's buffered FTLs: sectors of the same page always flush into
  /// the same physical page.
  std::vector<BufferedSector> extract_page_group(std::uint64_t sector,
                                                 std::uint32_t sectors_per_page);

  /// Removes and returns the least-recently-written sector's page group.
  std::vector<BufferedSector> extract_oldest_page_group(
      std::uint32_t sectors_per_page);

  /// Removes and returns everything, ordered by write age (oldest first,
  /// each entry expanded to its contiguous run).
  std::vector<BufferedSector> drain();

  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool over_capacity() const { return entries_.size() > capacity_; }
  bool empty() const { return entries_.empty(); }

  /// Length of the insertion log, stale entries included (bounded-memory
  /// regression tests).
  std::size_t age_log_size() const { return age_log_.size(); }

  /// Snapshot support. Entries are archived in sorted-sector order (the
  /// hash map is only ever probed by key, so insertion order is not
  /// behavior; sorting makes the archive canonical). The age log is saved
  /// verbatim, stale entries included, so LRU eviction order is exact.
  void save_state(util::StateWriter& w) const;
  void load_state(util::StateReader& r);

 private:
  /// Drops stale age-log entries (overwritten or extracted sectors). Called
  /// when stale entries dominate so the log stays O(live entries) even
  /// under overwrite-only workloads that never trigger the lazy pruning at
  /// extraction.
  void compact_age_log();
  struct Entry {
    std::uint64_t token;
    std::uint64_t seq;
    bool small;
  };

  std::size_t capacity_;
  std::uint64_t next_seq_ = 0;
  std::unordered_map<std::uint64_t, Entry> entries_;
  /// Insertion log for LRU eviction; stale entries skipped lazily.
  std::deque<std::pair<std::uint64_t, std::uint64_t>> age_log_;  // (seq, sector)
};

}  // namespace esp::ftl
