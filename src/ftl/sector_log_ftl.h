// sectorLogFTL: the sector-log hybrid baseline from the paper's related
// work (Jin et al., "Sector Log: Fine-Grained Storage Management for Solid
// State Drives", SAC 2011), reimplemented for comparison.
//
// Like subFTL it is a hybrid: small writes are appended to a reserved LOG
// REGION under fine-grained mapping while full-page writes go to an
// ordinary coarse-mapped data region, and log cleaning merges live sectors
// back into the data region. The decisive difference the paper calls out:
// the log supports subpage granularity only at the LOGICAL level -- the
// physical program unit is still a full page, so a synchronous 4-KB append
// burns a 16-KB program (internal fragmentation), exactly like fgmFTL.
// ESP is what removes that cost in subFTL; this baseline isolates the
// contribution of the hybrid *structure* from the contribution of the
// *programming scheme*.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "ftl/block_allocator.h"
#include "ftl/fine_pool.h"
#include "ftl/ftl.h"
#include "ftl/fullpage_pool.h"
#include "ftl/write_buffer.h"
#include "nand/device.h"

namespace esp::ftl {

class SectorLogFtl : public Ftl {
 public:
  struct Config {
    std::uint64_t logical_sectors = 0;
    double log_region_fraction = 0.20;  ///< same budget as subFTL's region
    std::size_t gc_reserve_blocks = 8;
    std::size_t buffer_sectors = 512;
    SimTime buffer_insert_us = 2.0;
    std::uint32_t wl_pe_threshold = 64;
    std::uint32_t wl_check_interval = 1024;
    /// Copy-back GC in the data region (see CgmFtl::Config).
    bool use_copyback = false;
    /// Run maintenance paths (wear leveling, and for subFTL retention scan
    /// + idle release) with the original O(device) linear scans instead of
    /// the incremental indices. Decisions are bit-identical either way;
    /// used by differential tests and CI to prove it.
    bool reference_scan_maintenance = false;
  };

  SectorLogFtl(nand::NandDevice& dev, const Config& config);

  IoResult write(std::uint64_t sector, std::uint32_t count, bool sync,
                 SimTime now) override;
  IoResult read(std::uint64_t sector, std::uint32_t count, SimTime now,
                std::vector<std::uint64_t>* tokens) override;
  IoResult flush(SimTime now) override;
  void trim(std::uint64_t sector, std::uint32_t count) override;

  std::uint64_t logical_sectors() const override {
    return config_.logical_sectors;
  }
  const FtlStats& stats() const override { return stats_; }
  std::uint64_t mapping_memory_bytes() const override;
  std::string name() const override { return "sectorLogFTL"; }
  void set_telemetry(telemetry::Sink* sink) override;
  void collect_health(std::span<telemetry::BlockHealth> out) const override {
    pool_data_.fill_health(out);
    pool_log_.fill_health(out);
  }
  std::uint64_t free_blocks() const override {
    return allocator_.total_free();
  }

  std::size_t log_mapping_entries() const { return log_map_.size(); }

  void save_state(util::StateWriter& w) const override;
  void load_state(util::StateReader& r) override;

 private:
  SimTime flush_run(const std::vector<BufferedSector>& run, SimTime now);
  SimTime write_full_lpn(std::uint64_t lpn, const BufferedSector* group,
                         SimTime now);
  /// Appends small sectors to the log region (one full-page program per
  /// group, padded -- no ESP).
  SimTime append_to_log(std::span<const BufferedSector> group, SimTime now);
  /// Log cleaning target: merges live log sectors into the data region,
  /// one read-modify-write per logical page.
  SimTime merge_batch(std::span<const SectorWrite> batch, SimTime now);
  void drop_log_copy(std::uint64_t sector);
  void check_range(std::uint64_t sector, std::uint32_t count) const;

  nand::NandDevice& dev_;
  Config config_;
  nand::Geometry geo_;
  nand::AddressCodec codec_;
  FtlStats stats_;
  BlockAllocator allocator_;
  FullPagePool pool_data_;
  FinePool pool_log_;
  WriteBuffer buffer_;
  std::vector<std::uint64_t> l2p_;  ///< lpn -> linear page (data region)
  std::unordered_map<std::uint64_t, std::uint64_t> log_map_;  ///< sector->sub
  std::vector<std::uint32_t> version_;
  std::uint32_t writes_since_wl_ = 0;
  bool wl_toggle_ = false;
  telemetry::Sink* sink_ = nullptr;
};

}  // namespace esp::ftl
