// Free-block management shared by all regions of an FTL.
//
// All erased blocks of every chip live here. Allocation picks the
// lowest-P/E free block of the requested chip (dynamic wear leveling), and
// because the pool is shared between the subpage and full-page regions, a
// block's *type* is decided at program time -- the paper's block-type
// conversion falls out of the allocator for free.
#pragma once

#include <cstdint>
#include <optional>
#include <queue>
#include <vector>

#include "nand/geometry.h"
#include "util/serialize.h"

namespace esp::ftl {

class BlockAllocator {
 public:
  explicit BlockAllocator(const nand::Geometry& geo);

  /// Takes the lowest-P/E free block of `chip`; nullopt when the chip has
  /// no free blocks.
  std::optional<std::uint32_t> alloc(std::uint32_t chip);

  /// Returns an erased block to the free pool. `pe_cycles` keys the
  /// wear-leveling priority (callers pass the block's post-erase count).
  void release(std::uint32_t chip, std::uint32_t block,
               std::uint32_t pe_cycles);

  std::size_t free_on_chip(std::uint32_t chip) const;
  std::size_t total_free() const { return total_free_; }

  std::uint32_t chips() const {
    return static_cast<std::uint32_t>(per_chip_.size());
  }

  /// Snapshot support: preserves the exact heap array layout per chip so a
  /// restored allocator hands out blocks in the identical order.
  void save_state(util::StateWriter& w) const;
  void load_state(util::StateReader& r);

 private:
  struct Entry {
    std::uint32_t pe;
    std::uint32_t block;
    bool operator>(const Entry& other) const {
      return pe != other.pe ? pe > other.pe : block > other.block;
    }
  };
  using MinHeap =
      std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>>;

  std::vector<MinHeap> per_chip_;
  std::size_t total_free_ = 0;
};

}  // namespace esp::ftl
