// Fine-grained (sector-mapped) storage pool -- the FGM scheme's physical
// layer (paper Sec. 2).
//
// Flash programs are always full-page operations, but validity and mapping
// are tracked per 4-KB sector: a page program carries 1..Nsub live sectors
// and padding for the rest. When the write buffer manages to merge Nsub
// sectors, space efficiency is perfect; a lone synchronous 4-KB write burns
// a full page for one live sector -- the internal fragmentation that
// drives FGM's GC overhead on sync-heavy workloads.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <span>
#include <utility>
#include <vector>

#include "ftl/block_allocator.h"
#include "ftl/types.h"
#include "ftl/wear_index.h"
#include "nand/address.h"
#include "nand/device.h"
#include "telemetry/sink.h"

namespace esp::ftl {

class FinePool {
 public:
  struct Config {
    std::uint64_t quota_blocks = ~0ull;
    std::size_t reserve_free_blocks = 8;
    /// Debug/differential mode: find wear-leveling targets with the
    /// original O(device) linear scan instead of the incremental wear
    /// index (see FullPagePool::Config::reference_scan_maintenance).
    bool reference_scan_maintenance = false;
  };

  /// Invoked whenever a sector lands on flash (initial write and GC moves):
  /// (sector, new linear subpage address).
  using PlaceFn =
      std::function<void(std::uint64_t sector, std::uint64_t new_sub_lin)>;
  /// Optional log-region mode: when set, GC hands every live sector of the
  /// victim to this callback (merge into another region) instead of
  /// repacking within the pool -- the cleaning policy of sector-log-style
  /// hybrid FTLs. Returns the completion time.
  using EvictFn = std::function<SimTime(std::span<const SectorWrite> batch,
                                        SimTime now)>;

  FinePool(nand::NandDevice& dev, BlockAllocator& allocator,
           const Config& config, FtlStats& stats, PlaceFn place,
           EvictFn evict_on_gc = nullptr);

  /// Programs ONE full page carrying the given 1..Nsub sectors (padding
  /// elsewhere); invokes the place callback per sector. Returns completion.
  SimTime write_group(std::span<const SectorWrite> group, SimTime now);

  /// Marks the sector at the given linear subpage address stale.
  void invalidate(std::uint64_t sub_lin);

  /// Runs GC while space pressure persists.
  SimTime maybe_gc(SimTime now);

  /// Static wear leveling: relocate the least-worn sealed block's live
  /// sectors when it lags the device's most-worn block by more than
  /// `pe_threshold` erase cycles (see FullPagePool::static_wear_level).
  SimTime static_wear_level(SimTime now, std::uint32_t pe_threshold);

  std::uint64_t blocks_in_use() const { return blocks_in_use_; }
  std::uint64_t valid_sectors() const { return valid_sectors_; }

  /// Health snapshot: marks owned blocks as pool "fine" with their live
  /// sector count (capacity = sectors per block).
  void fill_health(std::span<telemetry::BlockHealth> out) const;

  /// Attaches a telemetry sink (nullptr detaches); GC / wear-leveling
  /// block collections are recorded as mechanism-lane op events.
  void set_telemetry(telemetry::Sink* sink) { sink_ = sink; }

  /// Snapshot support (see FullPagePool::save_state).
  void save_state(util::StateWriter& w) const;
  void load_state(util::StateReader& r);

 private:
  struct BlockMeta {
    bool owned = false;
    bool active = false;
    std::uint32_t next_page = 0;
    std::uint32_t valid_count = 0;                ///< live sectors
    std::vector<std::uint64_t> sector_of_slot;    ///< reverse map per slot
    std::vector<bool> valid;                      ///< per slot
  };

  std::size_t block_index(std::uint32_t chip, std::uint32_t block) const {
    return static_cast<std::size_t>(chip) * geo_.blocks_per_chip + block;
  }
  bool space_pressure() const;
  /// `now` stamps block-allocation telemetry.
  bool ensure_active(std::uint32_t* chip_out, SimTime now);
  SimTime collect(SimTime now);
  SimTime collect_block(std::size_t idx, SimTime now, bool for_wear_leveling);
  void push_victim_candidate(std::size_t idx);
  std::optional<std::size_t> pop_victim();
  /// BlockMeta per-slot array recycling (see SubpagePool::retire_meta_arrays).
  void retire_meta_arrays(BlockMeta& m);
  void init_meta_arrays(BlockMeta& m);

  nand::NandDevice& dev_;
  BlockAllocator& allocator_;
  Config config_;
  FtlStats& stats_;
  PlaceFn place_;
  EvictFn evict_on_gc_;
  nand::Geometry geo_;
  nand::AddressCodec codec_;

  std::vector<BlockMeta> meta_;
  std::vector<std::optional<std::uint32_t>> active_block_;
  std::uint32_t rr_chip_ = 0;
  std::uint64_t blocks_in_use_ = 0;
  std::uint64_t valid_sectors_ = 0;
  bool in_gc_ = false;
  telemetry::Sink* sink_ = nullptr;
  std::priority_queue<std::pair<std::uint32_t, std::size_t>,
                      std::vector<std::pair<std::uint32_t, std::size_t>>,
                      std::greater<>>
      victim_heap_;
  /// Wear-leveling candidates, pushed at seal time (see wear_index.h).
  WearIndex wear_index_;
  /// Recycled per-slot arrays of released blocks.
  struct SpareArrays {
    std::vector<std::uint64_t> sector_of_slot;
    std::vector<bool> valid;
  };
  std::vector<SpareArrays> spare_meta_;
  /// Pooled scratch. collect_block never nests within itself, and a nested
  /// write_group (GC repack) finishes with write_tokens_ before the outer
  /// write_group starts filling it.
  std::vector<SectorWrite> gc_live_;
  std::vector<std::uint64_t> write_tokens_;
};

}  // namespace esp::ftl
