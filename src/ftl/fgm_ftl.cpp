#include "ftl/fgm_ftl.h"

#include <algorithm>
#include <stdexcept>

#include "telemetry/metrics.h"

namespace esp::ftl {

FgmFtl::FgmFtl(nand::NandDevice& dev, const Config& config)
    : dev_(dev),
      config_(config),
      geo_(dev.geometry()),
      codec_(geo_),
      allocator_(geo_),
      pool_(dev, allocator_,
            FinePool::Config{/*quota_blocks=*/~0ull, config.gc_reserve_blocks,
                             config.reference_scan_maintenance},
            stats_,
            [this](std::uint64_t sector, std::uint64_t new_lin) {
              l2p_[sector] = new_lin;
            }),
      buffer_(config.buffer_sectors) {
  if (config_.logical_sectors == 0)
    throw std::invalid_argument("FgmFtl: logical_sectors must be > 0");
  if (config_.logical_sectors > geo_.total_subpages())
    throw std::invalid_argument("FgmFtl: logical space exceeds physical");
  l2p_.assign(config_.logical_sectors, nand::kUnmapped);
  version_.assign(config_.logical_sectors, 0);
}

void FgmFtl::check_range(std::uint64_t sector, std::uint32_t count) const {
  if (count == 0 || sector + count > config_.logical_sectors)
    throw std::out_of_range("FgmFtl: sector range outside logical space");
}

SimTime FgmFtl::flush_run(const std::vector<BufferedSector>& run,
                          SimTime now) {
  // The FGM scheme merges small writes only when their logical block
  // addresses are consecutive (paper Sec. 2). Because mapping is
  // per-sector, a contiguous run packs densely into pages with NO
  // alignment requirement (this is why FGM dodges the misaligned-write
  // penalty of footnote 1); anything shorter than a full page goes out
  // sparse -- the internal fragmentation Fig. 2 measures.
  // (`run` is one sorted contiguous run; chop it into page-sized groups.)
  const std::uint32_t subs = geo_.subpages_per_page;
  SimTime done = now;
  std::size_t i = 0;
  while (i < run.size()) {
    std::size_t j = i + 1;
    while (j < run.size() && j - i < subs &&
           run[j].sector == run[j - 1].sector + 1)
      ++j;
    const std::size_t n = j - i;
    std::vector<SectorWrite> group;
    group.reserve(n);
    std::uint64_t small_in_group = 0;
    for (std::size_t k = i; k < j; ++k) {
      const BufferedSector& bs = run[k];
      // Drop the stale flash copy before placing the fresh one.
      if (l2p_[bs.sector] != nand::kUnmapped) {
        pool_.invalidate(l2p_[bs.sector]);
        l2p_[bs.sector] = nand::kUnmapped;
      }
      group.push_back(SectorWrite{bs.sector, bs.token});
      if (bs.small) ++small_in_group;
    }
    done = std::max(done, pool_.write_group(group, now));
    // Attribute the page's cost proportionally to its small-write sectors:
    // a lone sync 4-KB sector pays the whole 16-KB page (request WAF 4),
    // four merged ones pay 4 KB each (request WAF 1). Multiply before
    // dividing -- page_bytes / n truncates for 3-sector merges and would
    // leak up to n-1 bytes of attributed cost per group.
    stats_.small_service_flash_bytes +=
        small_in_group * geo_.page_bytes / n;
    i = j;
  }
  return done;
}

IoResult FgmFtl::write(std::uint64_t sector, std::uint32_t count, bool sync,
                       SimTime now) {
  check_range(sector, count);
  if (config_.wl_check_interval > 0 &&
      ++writes_since_wl_ >= config_.wl_check_interval) {
    writes_since_wl_ = 0;
    now = pool_.static_wear_level(now, config_.wl_pe_threshold);
  }
  ++stats_.host_write_requests;
  stats_.host_write_sectors += count;
  const bool small = count < geo_.subpages_per_page;
  if (small) {
    ++stats_.small_write_requests;
    stats_.small_write_bytes +=
        static_cast<std::uint64_t>(count) * geo_.subpage_bytes();
  }

  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint64_t s = sector + i;
    if (buffer_.insert(s, make_token(s, ++version_[s]), small))
      ++stats_.buffer_hits;
  }

  SimTime done = now + config_.buffer_insert_us;
  if (sync) {
    // Durability demanded now: flush this request's sectors together with
    // any contiguous buffered neighbors (the only merge still possible).
    const auto run = buffer_.extract_run(sector);
    done = std::max(done, flush_run(run, now));
  }
  while (buffer_.over_capacity()) {
    const auto victim = buffer_.extract_oldest_run();
    if (victim.empty()) break;
    done = std::max(done, flush_run(victim, now));
  }
  return IoResult{done, true};
}

IoResult FgmFtl::read(std::uint64_t sector, std::uint32_t count, SimTime now,
                      std::vector<std::uint64_t>* tokens) {
  check_range(sector, count);
  ++stats_.host_read_requests;
  stats_.host_read_sectors += count;
  if (tokens) tokens->assign(count, 0);

  SimTime done = now;
  bool ok = true;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint64_t s = sector + i;
    std::uint64_t token = 0;
    if (buffer_.lookup(s, &token)) {
      ++stats_.buffer_hits;
    } else if (l2p_[s] != nand::kUnmapped) {
      const auto ack = dev_.read_subpage(codec_.decode_subpage(l2p_[s]), now);
      ++stats_.flash_reads;
      token = ack.token;
      if (ack.status != nand::ReadStatus::kOk) {
        ok = false;
        ++stats_.read_failures;
      }
      done = std::max(done, ack.done);
    }
    if (tokens) (*tokens)[i] = token;
  }
  return IoResult{done, ok};
}

IoResult FgmFtl::flush(SimTime now) {
  // Explicit host flush: programs issued by the drain (and any GC they
  // trigger) attribute to the flush, not to the host write path.
  const telemetry::CauseScope cause(sink_, telemetry::Cause::kFlush,
                                    buffer_.size(), now);
  SimTime done = now;
  while (!buffer_.empty()) {
    const auto run = buffer_.extract_oldest_run();
    if (run.empty()) break;
    done = std::max(done, flush_run(run, now));
  }
  return IoResult{done, true};
}

void FgmFtl::trim(std::uint64_t sector, std::uint32_t count) {
  check_range(sector, count);
  // Page-aligned contract (see Ftl::trim): although the mapping is
  // per-sector, only sectors of whole logical pages inside the range are
  // dropped -- including their buffered copies. Partial edges keep their
  // newest data.
  const std::uint32_t subs = geo_.subpages_per_page;
  const std::uint64_t first = (sector + subs - 1) / subs * subs;
  const std::uint64_t end = (sector + count) / subs * subs;
  for (std::uint64_t s = first; s < end; ++s) {
    buffer_.erase(s);
    if (l2p_[s] != nand::kUnmapped) {
      pool_.invalidate(l2p_[s]);
      l2p_[s] = nand::kUnmapped;
    }
  }
}

std::uint64_t FgmFtl::mapping_memory_bytes() const {
  // One 32-bit sub-PPA per sector: Nsub x the CGM table.
  return l2p_.size() * sizeof(std::uint32_t);
}

void FgmFtl::set_telemetry(telemetry::Sink* sink) {
  sink_ = sink;
  pool_.set_telemetry(sink);
  if (!sink) return;
  telemetry::MetricsRegistry& reg = sink->registry();
  bind_stats(reg, name(), stats_);
  reg.gauge(name() + "/fine_blocks").set_provider([this] {
    return static_cast<double>(pool_.blocks_in_use());
  });
  reg.gauge(name() + "/mapping_memory_bytes").set_provider([this] {
    return static_cast<double>(mapping_memory_bytes());
  });
}

void FgmFtl::save_state(util::StateWriter& w) const {
  w.tag("FGMF");
  save_stats(w, stats_);
  allocator_.save_state(w);
  pool_.save_state(w);
  buffer_.save_state(w);
  w.pod_vec(l2p_);
  w.pod_vec(version_);
  w.u32(writes_since_wl_);
}

void FgmFtl::load_state(util::StateReader& r) {
  r.tag("FGMF");
  load_stats(r, stats_);
  allocator_.load_state(r);
  pool_.load_state(r);
  buffer_.load_state(r);
  r.pod_vec(l2p_);
  r.pod_vec(version_);
  writes_since_wl_ = r.u32();
}

}  // namespace esp::ftl
