# Empty compiler generated dependencies file for ablation_mapping_memory.
# This may be replaced when dependencies are built.
