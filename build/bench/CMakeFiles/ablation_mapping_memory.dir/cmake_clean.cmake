file(REMOVE_RECURSE
  "CMakeFiles/ablation_mapping_memory.dir/ablation_mapping_memory.cpp.o"
  "CMakeFiles/ablation_mapping_memory.dir/ablation_mapping_memory.cpp.o.d"
  "ablation_mapping_memory"
  "ablation_mapping_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mapping_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
