file(REMOVE_RECURSE
  "CMakeFiles/micro_ftl_ops.dir/micro_ftl_ops.cpp.o"
  "CMakeFiles/micro_ftl_ops.dir/micro_ftl_ops.cpp.o.d"
  "micro_ftl_ops"
  "micro_ftl_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_ftl_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
