# Empty compiler generated dependencies file for micro_ftl_ops.
# This may be replaced when dependencies are built.
