file(REMOVE_RECURSE
  "CMakeFiles/ablation_mapping_cache.dir/ablation_mapping_cache.cpp.o"
  "CMakeFiles/ablation_mapping_cache.dir/ablation_mapping_cache.cpp.o.d"
  "ablation_mapping_cache"
  "ablation_mapping_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mapping_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
