# Empty dependencies file for ablation_mapping_cache.
# This may be replaced when dependencies are built.
