# Empty dependencies file for ext_lifetime_projection.
# This may be replaced when dependencies are built.
