file(REMOVE_RECURSE
  "CMakeFiles/ext_lifetime_projection.dir/ext_lifetime_projection.cpp.o"
  "CMakeFiles/ext_lifetime_projection.dir/ext_lifetime_projection.cpp.o.d"
  "ext_lifetime_projection"
  "ext_lifetime_projection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_lifetime_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
