# Empty dependencies file for fig1_trend.
# This may be replaced when dependencies are built.
