file(REMOVE_RECURSE
  "CMakeFiles/fig1_trend.dir/fig1_trend.cpp.o"
  "CMakeFiles/fig1_trend.dir/fig1_trend.cpp.o.d"
  "fig1_trend"
  "fig1_trend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_trend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
