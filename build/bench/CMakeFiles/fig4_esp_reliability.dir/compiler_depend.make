# Empty compiler generated dependencies file for fig4_esp_reliability.
# This may be replaced when dependencies are built.
