file(REMOVE_RECURSE
  "CMakeFiles/fig4_esp_reliability.dir/fig4_esp_reliability.cpp.o"
  "CMakeFiles/fig4_esp_reliability.dir/fig4_esp_reliability.cpp.o.d"
  "fig4_esp_reliability"
  "fig4_esp_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_esp_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
