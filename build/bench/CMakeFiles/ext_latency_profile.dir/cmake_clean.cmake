file(REMOVE_RECURSE
  "CMakeFiles/ext_latency_profile.dir/ext_latency_profile.cpp.o"
  "CMakeFiles/ext_latency_profile.dir/ext_latency_profile.cpp.o.d"
  "ext_latency_profile"
  "ext_latency_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_latency_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
