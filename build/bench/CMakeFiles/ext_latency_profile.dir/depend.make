# Empty dependencies file for ext_latency_profile.
# This may be replaced when dependencies are built.
