# Empty dependencies file for ablation_copyback.
# This may be replaced when dependencies are built.
