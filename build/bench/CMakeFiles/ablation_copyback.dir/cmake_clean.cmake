file(REMOVE_RECURSE
  "CMakeFiles/ablation_copyback.dir/ablation_copyback.cpp.o"
  "CMakeFiles/ablation_copyback.dir/ablation_copyback.cpp.o.d"
  "ablation_copyback"
  "ablation_copyback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_copyback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
