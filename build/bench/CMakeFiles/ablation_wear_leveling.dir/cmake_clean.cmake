file(REMOVE_RECURSE
  "CMakeFiles/ablation_wear_leveling.dir/ablation_wear_leveling.cpp.o"
  "CMakeFiles/ablation_wear_leveling.dir/ablation_wear_leveling.cpp.o.d"
  "ablation_wear_leveling"
  "ablation_wear_leveling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_wear_leveling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
