file(REMOVE_RECURSE
  "CMakeFiles/ext_subpage_read.dir/ext_subpage_read.cpp.o"
  "CMakeFiles/ext_subpage_read.dir/ext_subpage_read.cpp.o.d"
  "ext_subpage_read"
  "ext_subpage_read.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_subpage_read.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
