# Empty dependencies file for ext_subpage_read.
# This may be replaced when dependencies are built.
