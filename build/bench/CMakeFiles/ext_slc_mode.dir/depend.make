# Empty dependencies file for ext_slc_mode.
# This may be replaced when dependencies are built.
