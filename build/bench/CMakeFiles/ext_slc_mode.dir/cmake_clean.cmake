file(REMOVE_RECURSE
  "CMakeFiles/ext_slc_mode.dir/ext_slc_mode.cpp.o"
  "CMakeFiles/ext_slc_mode.dir/ext_slc_mode.cpp.o.d"
  "ext_slc_mode"
  "ext_slc_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_slc_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
