# Empty dependencies file for table1_request_waf.
# This may be replaced when dependencies are built.
