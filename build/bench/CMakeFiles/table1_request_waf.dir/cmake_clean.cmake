file(REMOVE_RECURSE
  "CMakeFiles/table1_request_waf.dir/table1_request_waf.cpp.o"
  "CMakeFiles/table1_request_waf.dir/table1_request_waf.cpp.o.d"
  "table1_request_waf"
  "table1_request_waf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_request_waf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
