file(REMOVE_RECURSE
  "CMakeFiles/fig2_small_writes.dir/fig2_small_writes.cpp.o"
  "CMakeFiles/fig2_small_writes.dir/fig2_small_writes.cpp.o.d"
  "fig2_small_writes"
  "fig2_small_writes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_small_writes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
