# Empty compiler generated dependencies file for fig2_small_writes.
# This may be replaced when dependencies are built.
