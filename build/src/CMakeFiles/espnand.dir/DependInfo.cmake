
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/experiment.cpp" "src/CMakeFiles/espnand.dir/core/experiment.cpp.o" "gcc" "src/CMakeFiles/espnand.dir/core/experiment.cpp.o.d"
  "/root/repo/src/core/ssd.cpp" "src/CMakeFiles/espnand.dir/core/ssd.cpp.o" "gcc" "src/CMakeFiles/espnand.dir/core/ssd.cpp.o.d"
  "/root/repo/src/ecc/ecc_model.cpp" "src/CMakeFiles/espnand.dir/ecc/ecc_model.cpp.o" "gcc" "src/CMakeFiles/espnand.dir/ecc/ecc_model.cpp.o.d"
  "/root/repo/src/ftl/block_allocator.cpp" "src/CMakeFiles/espnand.dir/ftl/block_allocator.cpp.o" "gcc" "src/CMakeFiles/espnand.dir/ftl/block_allocator.cpp.o.d"
  "/root/repo/src/ftl/cgm_ftl.cpp" "src/CMakeFiles/espnand.dir/ftl/cgm_ftl.cpp.o" "gcc" "src/CMakeFiles/espnand.dir/ftl/cgm_ftl.cpp.o.d"
  "/root/repo/src/ftl/fgm_ftl.cpp" "src/CMakeFiles/espnand.dir/ftl/fgm_ftl.cpp.o" "gcc" "src/CMakeFiles/espnand.dir/ftl/fgm_ftl.cpp.o.d"
  "/root/repo/src/ftl/fine_pool.cpp" "src/CMakeFiles/espnand.dir/ftl/fine_pool.cpp.o" "gcc" "src/CMakeFiles/espnand.dir/ftl/fine_pool.cpp.o.d"
  "/root/repo/src/ftl/fullpage_pool.cpp" "src/CMakeFiles/espnand.dir/ftl/fullpage_pool.cpp.o" "gcc" "src/CMakeFiles/espnand.dir/ftl/fullpage_pool.cpp.o.d"
  "/root/repo/src/ftl/mapping_cache.cpp" "src/CMakeFiles/espnand.dir/ftl/mapping_cache.cpp.o" "gcc" "src/CMakeFiles/espnand.dir/ftl/mapping_cache.cpp.o.d"
  "/root/repo/src/ftl/sector_log_ftl.cpp" "src/CMakeFiles/espnand.dir/ftl/sector_log_ftl.cpp.o" "gcc" "src/CMakeFiles/espnand.dir/ftl/sector_log_ftl.cpp.o.d"
  "/root/repo/src/ftl/stats.cpp" "src/CMakeFiles/espnand.dir/ftl/stats.cpp.o" "gcc" "src/CMakeFiles/espnand.dir/ftl/stats.cpp.o.d"
  "/root/repo/src/ftl/sub_ftl.cpp" "src/CMakeFiles/espnand.dir/ftl/sub_ftl.cpp.o" "gcc" "src/CMakeFiles/espnand.dir/ftl/sub_ftl.cpp.o.d"
  "/root/repo/src/ftl/subpage_pool.cpp" "src/CMakeFiles/espnand.dir/ftl/subpage_pool.cpp.o" "gcc" "src/CMakeFiles/espnand.dir/ftl/subpage_pool.cpp.o.d"
  "/root/repo/src/ftl/wear_metrics.cpp" "src/CMakeFiles/espnand.dir/ftl/wear_metrics.cpp.o" "gcc" "src/CMakeFiles/espnand.dir/ftl/wear_metrics.cpp.o.d"
  "/root/repo/src/ftl/write_buffer.cpp" "src/CMakeFiles/espnand.dir/ftl/write_buffer.cpp.o" "gcc" "src/CMakeFiles/espnand.dir/ftl/write_buffer.cpp.o.d"
  "/root/repo/src/nand/block.cpp" "src/CMakeFiles/espnand.dir/nand/block.cpp.o" "gcc" "src/CMakeFiles/espnand.dir/nand/block.cpp.o.d"
  "/root/repo/src/nand/block_cells.cpp" "src/CMakeFiles/espnand.dir/nand/block_cells.cpp.o" "gcc" "src/CMakeFiles/espnand.dir/nand/block_cells.cpp.o.d"
  "/root/repo/src/nand/cell_model.cpp" "src/CMakeFiles/espnand.dir/nand/cell_model.cpp.o" "gcc" "src/CMakeFiles/espnand.dir/nand/cell_model.cpp.o.d"
  "/root/repo/src/nand/device.cpp" "src/CMakeFiles/espnand.dir/nand/device.cpp.o" "gcc" "src/CMakeFiles/espnand.dir/nand/device.cpp.o.d"
  "/root/repo/src/nand/geometry.cpp" "src/CMakeFiles/espnand.dir/nand/geometry.cpp.o" "gcc" "src/CMakeFiles/espnand.dir/nand/geometry.cpp.o.d"
  "/root/repo/src/nand/retention_model.cpp" "src/CMakeFiles/espnand.dir/nand/retention_model.cpp.o" "gcc" "src/CMakeFiles/espnand.dir/nand/retention_model.cpp.o.d"
  "/root/repo/src/sim/driver.cpp" "src/CMakeFiles/espnand.dir/sim/driver.cpp.o" "gcc" "src/CMakeFiles/espnand.dir/sim/driver.cpp.o.d"
  "/root/repo/src/util/histogram.cpp" "src/CMakeFiles/espnand.dir/util/histogram.cpp.o" "gcc" "src/CMakeFiles/espnand.dir/util/histogram.cpp.o.d"
  "/root/repo/src/util/logger.cpp" "src/CMakeFiles/espnand.dir/util/logger.cpp.o" "gcc" "src/CMakeFiles/espnand.dir/util/logger.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/espnand.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/espnand.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/espnand.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/espnand.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table_printer.cpp" "src/CMakeFiles/espnand.dir/util/table_printer.cpp.o" "gcc" "src/CMakeFiles/espnand.dir/util/table_printer.cpp.o.d"
  "/root/repo/src/util/zipf.cpp" "src/CMakeFiles/espnand.dir/util/zipf.cpp.o" "gcc" "src/CMakeFiles/espnand.dir/util/zipf.cpp.o.d"
  "/root/repo/src/workload/profiles.cpp" "src/CMakeFiles/espnand.dir/workload/profiles.cpp.o" "gcc" "src/CMakeFiles/espnand.dir/workload/profiles.cpp.o.d"
  "/root/repo/src/workload/synthetic.cpp" "src/CMakeFiles/espnand.dir/workload/synthetic.cpp.o" "gcc" "src/CMakeFiles/espnand.dir/workload/synthetic.cpp.o.d"
  "/root/repo/src/workload/trace.cpp" "src/CMakeFiles/espnand.dir/workload/trace.cpp.o" "gcc" "src/CMakeFiles/espnand.dir/workload/trace.cpp.o.d"
  "/root/repo/src/workload/trace_stats.cpp" "src/CMakeFiles/espnand.dir/workload/trace_stats.cpp.o" "gcc" "src/CMakeFiles/espnand.dir/workload/trace_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
