file(REMOVE_RECURSE
  "libespnand.a"
)
