# Empty dependencies file for espnand.
# This may be replaced when dependencies are built.
