# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mail_server "/root/repo/build/examples/mail_server" "8000")
set_tests_properties(example_mail_server PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_oltp_database "/root/repo/build/examples/oltp_database" "6000")
set_tests_properties(example_oltp_database PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_replay "/root/repo/build/examples/trace_replay" "sub")
set_tests_properties(example_trace_replay PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_retention_explorer "/root/repo/build/examples/retention_explorer")
set_tests_properties(example_retention_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_capacity_scaling "/root/repo/build/examples/capacity_scaling")
set_tests_properties(example_capacity_scaling PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
