file(REMOVE_RECURSE
  "CMakeFiles/retention_explorer.dir/retention_explorer.cpp.o"
  "CMakeFiles/retention_explorer.dir/retention_explorer.cpp.o.d"
  "retention_explorer"
  "retention_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retention_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
