# Empty compiler generated dependencies file for retention_explorer.
# This may be replaced when dependencies are built.
