# Empty compiler generated dependencies file for capacity_scaling.
# This may be replaced when dependencies are built.
