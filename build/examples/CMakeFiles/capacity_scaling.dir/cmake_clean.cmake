file(REMOVE_RECURSE
  "CMakeFiles/capacity_scaling.dir/capacity_scaling.cpp.o"
  "CMakeFiles/capacity_scaling.dir/capacity_scaling.cpp.o.d"
  "capacity_scaling"
  "capacity_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capacity_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
