# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_espsim_profile "/root/repo/build/tools/espsim" "--ftl" "sub" "--profile" "tpcc" "--requests" "3000" "--warmup" "2000" "--capacity-gib" "0.25")
set_tests_properties(tool_espsim_profile PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_espsim_manual "/root/repo/build/tools/espsim" "--ftl" "fgm" "--r-small" "1.0" "--r-synch" "0.5" "--requests" "3000" "--warmup" "1000" "--capacity-gib" "0.25")
set_tests_properties(tool_espsim_manual PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_esptrace_roundtrip "/root/repo/build/tools/esptrace" "generate" "varmail" "/root/repo/build/tools/varmail_test.trace" "5000" "65536")
set_tests_properties(tool_esptrace_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_esptrace_analyze "/root/repo/build/tools/esptrace" "analyze" "/root/repo/build/tools/varmail_test.trace")
set_tests_properties(tool_esptrace_analyze PROPERTIES  DEPENDS "tool_esptrace_roundtrip" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
