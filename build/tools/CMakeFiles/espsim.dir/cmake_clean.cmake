file(REMOVE_RECURSE
  "CMakeFiles/espsim.dir/espsim.cpp.o"
  "CMakeFiles/espsim.dir/espsim.cpp.o.d"
  "espsim"
  "espsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/espsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
