# Empty dependencies file for espsim.
# This may be replaced when dependencies are built.
