file(REMOVE_RECURSE
  "CMakeFiles/esptrace.dir/esptrace.cpp.o"
  "CMakeFiles/esptrace.dir/esptrace.cpp.o.d"
  "esptrace"
  "esptrace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esptrace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
