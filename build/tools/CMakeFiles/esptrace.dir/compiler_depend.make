# Empty compiler generated dependencies file for esptrace.
# This may be replaced when dependencies are built.
