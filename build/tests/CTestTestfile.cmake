# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/esp_tests_util[1]_include.cmake")
include("/root/repo/build/tests/esp_tests_nand[1]_include.cmake")
include("/root/repo/build/tests/esp_tests_ecc[1]_include.cmake")
include("/root/repo/build/tests/esp_tests_ftl[1]_include.cmake")
include("/root/repo/build/tests/esp_tests_sim[1]_include.cmake")
include("/root/repo/build/tests/esp_tests_core[1]_include.cmake")
include("/root/repo/build/tests/esp_tests_workload[1]_include.cmake")
include("/root/repo/build/tests/esp_tests_integration[1]_include.cmake")
