file(REMOVE_RECURSE
  "CMakeFiles/esp_tests_sim.dir/sim/driver_test.cpp.o"
  "CMakeFiles/esp_tests_sim.dir/sim/driver_test.cpp.o.d"
  "esp_tests_sim"
  "esp_tests_sim.pdb"
  "esp_tests_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esp_tests_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
