
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/nand/block_cells_test.cpp" "tests/CMakeFiles/esp_tests_nand.dir/nand/block_cells_test.cpp.o" "gcc" "tests/CMakeFiles/esp_tests_nand.dir/nand/block_cells_test.cpp.o.d"
  "/root/repo/tests/nand/block_test.cpp" "tests/CMakeFiles/esp_tests_nand.dir/nand/block_test.cpp.o" "gcc" "tests/CMakeFiles/esp_tests_nand.dir/nand/block_test.cpp.o.d"
  "/root/repo/tests/nand/cell_model_test.cpp" "tests/CMakeFiles/esp_tests_nand.dir/nand/cell_model_test.cpp.o" "gcc" "tests/CMakeFiles/esp_tests_nand.dir/nand/cell_model_test.cpp.o.d"
  "/root/repo/tests/nand/device_test.cpp" "tests/CMakeFiles/esp_tests_nand.dir/nand/device_test.cpp.o" "gcc" "tests/CMakeFiles/esp_tests_nand.dir/nand/device_test.cpp.o.d"
  "/root/repo/tests/nand/geometry_test.cpp" "tests/CMakeFiles/esp_tests_nand.dir/nand/geometry_test.cpp.o" "gcc" "tests/CMakeFiles/esp_tests_nand.dir/nand/geometry_test.cpp.o.d"
  "/root/repo/tests/nand/reliability_mode_test.cpp" "tests/CMakeFiles/esp_tests_nand.dir/nand/reliability_mode_test.cpp.o" "gcc" "tests/CMakeFiles/esp_tests_nand.dir/nand/reliability_mode_test.cpp.o.d"
  "/root/repo/tests/nand/retention_model_test.cpp" "tests/CMakeFiles/esp_tests_nand.dir/nand/retention_model_test.cpp.o" "gcc" "tests/CMakeFiles/esp_tests_nand.dir/nand/retention_model_test.cpp.o.d"
  "/root/repo/tests/nand/timing_test.cpp" "tests/CMakeFiles/esp_tests_nand.dir/nand/timing_test.cpp.o" "gcc" "tests/CMakeFiles/esp_tests_nand.dir/nand/timing_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/espnand.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
