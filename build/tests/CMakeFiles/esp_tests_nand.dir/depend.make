# Empty dependencies file for esp_tests_nand.
# This may be replaced when dependencies are built.
