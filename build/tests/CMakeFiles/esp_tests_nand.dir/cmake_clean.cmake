file(REMOVE_RECURSE
  "CMakeFiles/esp_tests_nand.dir/nand/block_cells_test.cpp.o"
  "CMakeFiles/esp_tests_nand.dir/nand/block_cells_test.cpp.o.d"
  "CMakeFiles/esp_tests_nand.dir/nand/block_test.cpp.o"
  "CMakeFiles/esp_tests_nand.dir/nand/block_test.cpp.o.d"
  "CMakeFiles/esp_tests_nand.dir/nand/cell_model_test.cpp.o"
  "CMakeFiles/esp_tests_nand.dir/nand/cell_model_test.cpp.o.d"
  "CMakeFiles/esp_tests_nand.dir/nand/device_test.cpp.o"
  "CMakeFiles/esp_tests_nand.dir/nand/device_test.cpp.o.d"
  "CMakeFiles/esp_tests_nand.dir/nand/geometry_test.cpp.o"
  "CMakeFiles/esp_tests_nand.dir/nand/geometry_test.cpp.o.d"
  "CMakeFiles/esp_tests_nand.dir/nand/reliability_mode_test.cpp.o"
  "CMakeFiles/esp_tests_nand.dir/nand/reliability_mode_test.cpp.o.d"
  "CMakeFiles/esp_tests_nand.dir/nand/retention_model_test.cpp.o"
  "CMakeFiles/esp_tests_nand.dir/nand/retention_model_test.cpp.o.d"
  "CMakeFiles/esp_tests_nand.dir/nand/timing_test.cpp.o"
  "CMakeFiles/esp_tests_nand.dir/nand/timing_test.cpp.o.d"
  "esp_tests_nand"
  "esp_tests_nand.pdb"
  "esp_tests_nand[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esp_tests_nand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
