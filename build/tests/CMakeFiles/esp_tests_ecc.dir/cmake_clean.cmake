file(REMOVE_RECURSE
  "CMakeFiles/esp_tests_ecc.dir/ecc/ecc_model_test.cpp.o"
  "CMakeFiles/esp_tests_ecc.dir/ecc/ecc_model_test.cpp.o.d"
  "esp_tests_ecc"
  "esp_tests_ecc.pdb"
  "esp_tests_ecc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esp_tests_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
