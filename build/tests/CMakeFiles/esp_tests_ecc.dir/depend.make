# Empty dependencies file for esp_tests_ecc.
# This may be replaced when dependencies are built.
