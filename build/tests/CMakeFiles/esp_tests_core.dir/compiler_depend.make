# Empty compiler generated dependencies file for esp_tests_core.
# This may be replaced when dependencies are built.
