file(REMOVE_RECURSE
  "CMakeFiles/esp_tests_core.dir/core/experiment_test.cpp.o"
  "CMakeFiles/esp_tests_core.dir/core/experiment_test.cpp.o.d"
  "CMakeFiles/esp_tests_core.dir/core/ssd_test.cpp.o"
  "CMakeFiles/esp_tests_core.dir/core/ssd_test.cpp.o.d"
  "esp_tests_core"
  "esp_tests_core.pdb"
  "esp_tests_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esp_tests_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
