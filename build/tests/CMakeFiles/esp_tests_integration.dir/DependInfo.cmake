
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/crossftl_test.cpp" "tests/CMakeFiles/esp_tests_integration.dir/integration/crossftl_test.cpp.o" "gcc" "tests/CMakeFiles/esp_tests_integration.dir/integration/crossftl_test.cpp.o.d"
  "/root/repo/tests/integration/fault_injection_test.cpp" "tests/CMakeFiles/esp_tests_integration.dir/integration/fault_injection_test.cpp.o" "gcc" "tests/CMakeFiles/esp_tests_integration.dir/integration/fault_injection_test.cpp.o.d"
  "/root/repo/tests/integration/ftl_contract_test.cpp" "tests/CMakeFiles/esp_tests_integration.dir/integration/ftl_contract_test.cpp.o" "gcc" "tests/CMakeFiles/esp_tests_integration.dir/integration/ftl_contract_test.cpp.o.d"
  "/root/repo/tests/integration/geometry_sweep_test.cpp" "tests/CMakeFiles/esp_tests_integration.dir/integration/geometry_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/esp_tests_integration.dir/integration/geometry_sweep_test.cpp.o.d"
  "/root/repo/tests/integration/property_test.cpp" "tests/CMakeFiles/esp_tests_integration.dir/integration/property_test.cpp.o" "gcc" "tests/CMakeFiles/esp_tests_integration.dir/integration/property_test.cpp.o.d"
  "/root/repo/tests/integration/retention_gc_interplay_test.cpp" "tests/CMakeFiles/esp_tests_integration.dir/integration/retention_gc_interplay_test.cpp.o" "gcc" "tests/CMakeFiles/esp_tests_integration.dir/integration/retention_gc_interplay_test.cpp.o.d"
  "/root/repo/tests/integration/retention_test.cpp" "tests/CMakeFiles/esp_tests_integration.dir/integration/retention_test.cpp.o" "gcc" "tests/CMakeFiles/esp_tests_integration.dir/integration/retention_test.cpp.o.d"
  "/root/repo/tests/integration/smoke_test.cpp" "tests/CMakeFiles/esp_tests_integration.dir/integration/smoke_test.cpp.o" "gcc" "tests/CMakeFiles/esp_tests_integration.dir/integration/smoke_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/espnand.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
