# Empty dependencies file for esp_tests_integration.
# This may be replaced when dependencies are built.
