file(REMOVE_RECURSE
  "CMakeFiles/esp_tests_integration.dir/integration/crossftl_test.cpp.o"
  "CMakeFiles/esp_tests_integration.dir/integration/crossftl_test.cpp.o.d"
  "CMakeFiles/esp_tests_integration.dir/integration/fault_injection_test.cpp.o"
  "CMakeFiles/esp_tests_integration.dir/integration/fault_injection_test.cpp.o.d"
  "CMakeFiles/esp_tests_integration.dir/integration/ftl_contract_test.cpp.o"
  "CMakeFiles/esp_tests_integration.dir/integration/ftl_contract_test.cpp.o.d"
  "CMakeFiles/esp_tests_integration.dir/integration/geometry_sweep_test.cpp.o"
  "CMakeFiles/esp_tests_integration.dir/integration/geometry_sweep_test.cpp.o.d"
  "CMakeFiles/esp_tests_integration.dir/integration/property_test.cpp.o"
  "CMakeFiles/esp_tests_integration.dir/integration/property_test.cpp.o.d"
  "CMakeFiles/esp_tests_integration.dir/integration/retention_gc_interplay_test.cpp.o"
  "CMakeFiles/esp_tests_integration.dir/integration/retention_gc_interplay_test.cpp.o.d"
  "CMakeFiles/esp_tests_integration.dir/integration/retention_test.cpp.o"
  "CMakeFiles/esp_tests_integration.dir/integration/retention_test.cpp.o.d"
  "CMakeFiles/esp_tests_integration.dir/integration/smoke_test.cpp.o"
  "CMakeFiles/esp_tests_integration.dir/integration/smoke_test.cpp.o.d"
  "esp_tests_integration"
  "esp_tests_integration.pdb"
  "esp_tests_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esp_tests_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
