file(REMOVE_RECURSE
  "CMakeFiles/esp_tests_ftl.dir/ftl/block_allocator_test.cpp.o"
  "CMakeFiles/esp_tests_ftl.dir/ftl/block_allocator_test.cpp.o.d"
  "CMakeFiles/esp_tests_ftl.dir/ftl/cgm_ftl_test.cpp.o"
  "CMakeFiles/esp_tests_ftl.dir/ftl/cgm_ftl_test.cpp.o.d"
  "CMakeFiles/esp_tests_ftl.dir/ftl/fgm_ftl_test.cpp.o"
  "CMakeFiles/esp_tests_ftl.dir/ftl/fgm_ftl_test.cpp.o.d"
  "CMakeFiles/esp_tests_ftl.dir/ftl/fine_pool_test.cpp.o"
  "CMakeFiles/esp_tests_ftl.dir/ftl/fine_pool_test.cpp.o.d"
  "CMakeFiles/esp_tests_ftl.dir/ftl/fullpage_pool_test.cpp.o"
  "CMakeFiles/esp_tests_ftl.dir/ftl/fullpage_pool_test.cpp.o.d"
  "CMakeFiles/esp_tests_ftl.dir/ftl/mapping_cache_test.cpp.o"
  "CMakeFiles/esp_tests_ftl.dir/ftl/mapping_cache_test.cpp.o.d"
  "CMakeFiles/esp_tests_ftl.dir/ftl/sector_log_ftl_test.cpp.o"
  "CMakeFiles/esp_tests_ftl.dir/ftl/sector_log_ftl_test.cpp.o.d"
  "CMakeFiles/esp_tests_ftl.dir/ftl/sub_ftl_test.cpp.o"
  "CMakeFiles/esp_tests_ftl.dir/ftl/sub_ftl_test.cpp.o.d"
  "CMakeFiles/esp_tests_ftl.dir/ftl/subpage_pool_test.cpp.o"
  "CMakeFiles/esp_tests_ftl.dir/ftl/subpage_pool_test.cpp.o.d"
  "CMakeFiles/esp_tests_ftl.dir/ftl/types_test.cpp.o"
  "CMakeFiles/esp_tests_ftl.dir/ftl/types_test.cpp.o.d"
  "CMakeFiles/esp_tests_ftl.dir/ftl/wear_metrics_test.cpp.o"
  "CMakeFiles/esp_tests_ftl.dir/ftl/wear_metrics_test.cpp.o.d"
  "CMakeFiles/esp_tests_ftl.dir/ftl/write_buffer_test.cpp.o"
  "CMakeFiles/esp_tests_ftl.dir/ftl/write_buffer_test.cpp.o.d"
  "esp_tests_ftl"
  "esp_tests_ftl.pdb"
  "esp_tests_ftl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esp_tests_ftl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
