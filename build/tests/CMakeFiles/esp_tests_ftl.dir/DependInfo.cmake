
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ftl/block_allocator_test.cpp" "tests/CMakeFiles/esp_tests_ftl.dir/ftl/block_allocator_test.cpp.o" "gcc" "tests/CMakeFiles/esp_tests_ftl.dir/ftl/block_allocator_test.cpp.o.d"
  "/root/repo/tests/ftl/cgm_ftl_test.cpp" "tests/CMakeFiles/esp_tests_ftl.dir/ftl/cgm_ftl_test.cpp.o" "gcc" "tests/CMakeFiles/esp_tests_ftl.dir/ftl/cgm_ftl_test.cpp.o.d"
  "/root/repo/tests/ftl/fgm_ftl_test.cpp" "tests/CMakeFiles/esp_tests_ftl.dir/ftl/fgm_ftl_test.cpp.o" "gcc" "tests/CMakeFiles/esp_tests_ftl.dir/ftl/fgm_ftl_test.cpp.o.d"
  "/root/repo/tests/ftl/fine_pool_test.cpp" "tests/CMakeFiles/esp_tests_ftl.dir/ftl/fine_pool_test.cpp.o" "gcc" "tests/CMakeFiles/esp_tests_ftl.dir/ftl/fine_pool_test.cpp.o.d"
  "/root/repo/tests/ftl/fullpage_pool_test.cpp" "tests/CMakeFiles/esp_tests_ftl.dir/ftl/fullpage_pool_test.cpp.o" "gcc" "tests/CMakeFiles/esp_tests_ftl.dir/ftl/fullpage_pool_test.cpp.o.d"
  "/root/repo/tests/ftl/mapping_cache_test.cpp" "tests/CMakeFiles/esp_tests_ftl.dir/ftl/mapping_cache_test.cpp.o" "gcc" "tests/CMakeFiles/esp_tests_ftl.dir/ftl/mapping_cache_test.cpp.o.d"
  "/root/repo/tests/ftl/sector_log_ftl_test.cpp" "tests/CMakeFiles/esp_tests_ftl.dir/ftl/sector_log_ftl_test.cpp.o" "gcc" "tests/CMakeFiles/esp_tests_ftl.dir/ftl/sector_log_ftl_test.cpp.o.d"
  "/root/repo/tests/ftl/sub_ftl_test.cpp" "tests/CMakeFiles/esp_tests_ftl.dir/ftl/sub_ftl_test.cpp.o" "gcc" "tests/CMakeFiles/esp_tests_ftl.dir/ftl/sub_ftl_test.cpp.o.d"
  "/root/repo/tests/ftl/subpage_pool_test.cpp" "tests/CMakeFiles/esp_tests_ftl.dir/ftl/subpage_pool_test.cpp.o" "gcc" "tests/CMakeFiles/esp_tests_ftl.dir/ftl/subpage_pool_test.cpp.o.d"
  "/root/repo/tests/ftl/types_test.cpp" "tests/CMakeFiles/esp_tests_ftl.dir/ftl/types_test.cpp.o" "gcc" "tests/CMakeFiles/esp_tests_ftl.dir/ftl/types_test.cpp.o.d"
  "/root/repo/tests/ftl/wear_metrics_test.cpp" "tests/CMakeFiles/esp_tests_ftl.dir/ftl/wear_metrics_test.cpp.o" "gcc" "tests/CMakeFiles/esp_tests_ftl.dir/ftl/wear_metrics_test.cpp.o.d"
  "/root/repo/tests/ftl/write_buffer_test.cpp" "tests/CMakeFiles/esp_tests_ftl.dir/ftl/write_buffer_test.cpp.o" "gcc" "tests/CMakeFiles/esp_tests_ftl.dir/ftl/write_buffer_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/espnand.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
