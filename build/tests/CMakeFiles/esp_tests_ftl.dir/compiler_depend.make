# Empty compiler generated dependencies file for esp_tests_ftl.
# This may be replaced when dependencies are built.
