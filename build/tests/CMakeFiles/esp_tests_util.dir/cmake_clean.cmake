file(REMOVE_RECURSE
  "CMakeFiles/esp_tests_util.dir/util/histogram_test.cpp.o"
  "CMakeFiles/esp_tests_util.dir/util/histogram_test.cpp.o.d"
  "CMakeFiles/esp_tests_util.dir/util/logger_test.cpp.o"
  "CMakeFiles/esp_tests_util.dir/util/logger_test.cpp.o.d"
  "CMakeFiles/esp_tests_util.dir/util/rng_test.cpp.o"
  "CMakeFiles/esp_tests_util.dir/util/rng_test.cpp.o.d"
  "CMakeFiles/esp_tests_util.dir/util/sim_time_test.cpp.o"
  "CMakeFiles/esp_tests_util.dir/util/sim_time_test.cpp.o.d"
  "CMakeFiles/esp_tests_util.dir/util/stats_test.cpp.o"
  "CMakeFiles/esp_tests_util.dir/util/stats_test.cpp.o.d"
  "CMakeFiles/esp_tests_util.dir/util/table_printer_test.cpp.o"
  "CMakeFiles/esp_tests_util.dir/util/table_printer_test.cpp.o.d"
  "CMakeFiles/esp_tests_util.dir/util/zipf_test.cpp.o"
  "CMakeFiles/esp_tests_util.dir/util/zipf_test.cpp.o.d"
  "esp_tests_util"
  "esp_tests_util.pdb"
  "esp_tests_util[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esp_tests_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
