# Empty dependencies file for esp_tests_util.
# This may be replaced when dependencies are built.
