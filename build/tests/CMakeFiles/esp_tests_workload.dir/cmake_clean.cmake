file(REMOVE_RECURSE
  "CMakeFiles/esp_tests_workload.dir/workload/profiles_test.cpp.o"
  "CMakeFiles/esp_tests_workload.dir/workload/profiles_test.cpp.o.d"
  "CMakeFiles/esp_tests_workload.dir/workload/synthetic_test.cpp.o"
  "CMakeFiles/esp_tests_workload.dir/workload/synthetic_test.cpp.o.d"
  "CMakeFiles/esp_tests_workload.dir/workload/trace_stats_test.cpp.o"
  "CMakeFiles/esp_tests_workload.dir/workload/trace_stats_test.cpp.o.d"
  "CMakeFiles/esp_tests_workload.dir/workload/trace_test.cpp.o"
  "CMakeFiles/esp_tests_workload.dir/workload/trace_test.cpp.o.d"
  "esp_tests_workload"
  "esp_tests_workload.pdb"
  "esp_tests_workload[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esp_tests_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
