# Empty compiler generated dependencies file for esp_tests_workload.
# This may be replaced when dependencies are built.
